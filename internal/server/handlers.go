package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"

	"mvpears"
	"mvpears/internal/audio"
)

// writeJSON renders v with the given status. Encoding into a buffer first
// is unnecessary: the values are small and fully in-memory.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorJSON{Error: fmt.Sprintf(format, args...)})
}

// decodeStatus maps a WAV decode failure to its HTTP status.
func decodeStatus(err error) int {
	var tooBig *http.MaxBytesError
	if errors.Is(err, audio.ErrTooLarge) || errors.As(err, &tooBig) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// readClip decodes one size-limited WAV stream and resamples it to the
// backend's rate.
func (s *Server) readClip(r io.Reader) (*mvpears.Clip, error) {
	clip, err := audio.ReadWAVLimited(r, s.cfg.MaxUploadBytes)
	if err != nil {
		return nil, err
	}
	if len(clip.Samples) == 0 {
		return nil, fmt.Errorf("%w: empty data chunk", audio.ErrMalformed)
	}
	if rate := s.cfg.Backend.SampleRate(); clip.SampleRate != rate {
		clip, err = clip.Resample(rate)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", audio.ErrMalformed, err)
		}
	}
	return clip, nil
}

// submit runs fn on the worker pool under the per-request deadline and
// translates admission / deadline failures into HTTP responses. It
// reports whether fn completed; on false the response has been written.
func (s *Server) submit(w http.ResponseWriter, r *http.Request, fn func(ctx context.Context)) bool {
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	err := s.pool.Do(ctx, fn)
	switch {
	case err == nil:
		return true
	case errors.Is(err, ErrQueueFull):
		s.queueRejected.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "server overloaded, retry later")
	case errors.Is(err, ErrPoolClosed):
		writeError(w, http.StatusServiceUnavailable, "server is draining")
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "detection exceeded the %v request deadline", s.cfg.RequestTimeout)
	default: // context.Canceled: the client is gone, best-effort status
		writeError(w, http.StatusServiceUnavailable, "request cancelled")
	}
	return false
}

// observe records a served verdict in the detection metrics.
func (s *Server) observe(det *mvpears.Detection) {
	verdict := VerdictBenign
	if det.Adversarial {
		verdict = VerdictAdversarial
	}
	s.detectionsTotal.With(verdict).Inc()
	s.stageSeconds.With("recognition").Observe(det.Timing.Recognition.Seconds())
	s.stageSeconds.With("similarity").Observe(det.Timing.Similarity.Seconds())
	s.stageSeconds.With("classify").Observe(det.Timing.Classify.Seconds())
}

// handleDetect serves POST /v1/detect: the request body is one WAV file,
// the response one DetectionJSON.
func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST with a WAV body")
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes+1024) // payload + header slack
	clip, err := s.readClip(body)
	if err != nil {
		writeError(w, decodeStatus(err), "decoding WAV: %v", err)
		return
	}
	var (
		det    *mvpears.Detection
		detErr error
	)
	if !s.submit(w, r, func(ctx context.Context) {
		det, detErr = s.cfg.Backend.DetectCtx(ctx, clip)
	}) {
		return
	}
	if detErr != nil {
		writeError(w, http.StatusInternalServerError, "detection failed: %v", detErr)
		return
	}
	s.observe(det)
	writeJSON(w, http.StatusOK, NewDetectionJSON(det, s.cfg.Backend.AuxiliaryNames()))
}

// handleDetectBatch serves POST /v1/detect/batch: a multipart/form-data
// body whose file parts are WAVs. The whole batch is one admission-queue
// job routed through the backend's batch API, so a saturated server
// rejects it atomically with 429.
func (s *Server) handleDetectBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST with multipart WAV parts")
		return
	}
	// Bound the whole batch body (files * per-file limit, plus framing)
	// before the multipart reader takes ownership of it.
	total := s.cfg.MaxUploadBytes*int64(s.cfg.MaxBatchFiles) + 1<<20
	r.Body = http.MaxBytesReader(w, r.Body, total)
	mr, err := r.MultipartReader()
	if err != nil {
		writeError(w, http.StatusBadRequest, "expected multipart/form-data: %v", err)
		return
	}

	var (
		names []string
		clips []*mvpears.Clip
	)
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, "reading multipart body: %v", err)
			return
		}
		name := partName(part)
		if len(clips) >= s.cfg.MaxBatchFiles {
			part.Close()
			writeError(w, http.StatusRequestEntityTooLarge, "batch exceeds %d files", s.cfg.MaxBatchFiles)
			return
		}
		clip, err := s.readClip(part)
		part.Close()
		if err != nil {
			writeError(w, decodeStatus(err), "decoding %q: %v", name, err)
			return
		}
		names = append(names, name)
		clips = append(clips, clip)
	}
	if len(clips) == 0 {
		writeError(w, http.StatusBadRequest, "no WAV file parts in request")
		return
	}
	var (
		dets   []*mvpears.Detection
		detErr error
	)
	if !s.submit(w, r, func(ctx context.Context) {
		dets, detErr = s.cfg.Backend.DetectBatchCtx(ctx, clips)
	}) {
		return
	}
	if detErr != nil {
		writeError(w, http.StatusInternalServerError, "batch detection failed: %v", detErr)
		return
	}
	resp := BatchResponseJSON{Results: make([]FileDetectionJSON, len(dets))}
	aux := s.cfg.Backend.AuxiliaryNames()
	for i, det := range dets {
		s.observe(det)
		resp.Results[i] = FileDetectionJSON{File: names[i], DetectionJSON: NewDetectionJSON(det, aux)}
	}
	writeJSON(w, http.StatusOK, resp)
}

// partName labels one multipart part by filename, falling back to the
// form name and then the part index-agnostic placeholder.
func partName(part *multipart.Part) string {
	if n := part.FileName(); n != "" {
		return n
	}
	if n := part.FormName(); n != "" {
		return n
	}
	return "unnamed"
}

// handleHealthz reports process liveness.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports readiness: 200 while serving, 503 once draining.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.metrics.Render(w); err != nil {
		s.cfg.Logger.Printf("mvpearsd: rendering metrics: %v", err)
	}
}
