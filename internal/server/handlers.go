package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"sync"

	"mvpears"
	"mvpears/internal/audio"
	"mvpears/internal/vcache"
)

// writeJSON renders v with the given status. Encoding into a buffer first
// is unnecessary: the values are small and fully in-memory.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorJSON{Error: fmt.Sprintf(format, args...)})
}

// decodeStatus maps a WAV decode failure to its HTTP status.
func decodeStatus(err error) int {
	var tooBig *http.MaxBytesError
	if errors.Is(err, audio.ErrTooLarge) || errors.As(err, &tooBig) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// scratchPool recycles WAV payload buffers across requests: the serving
// hot path reads each upload into a pooled buffer, fingerprints it, and —
// on a cache hit — answers without ever converting to float64 samples.
var scratchPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 64<<10); return &b },
}

func getScratch() *[]byte { return scratchPool.Get().(*[]byte) }

func putScratch(b *[]byte) { scratchPool.Put(b) }

// readPCM structurally decodes one size-limited WAV stream into the
// pooled scratch buffer, without float conversion. The scratch pointer is
// updated to the (possibly grown) payload buffer so the pool keeps it.
func (s *Server) readPCM(r io.Reader, scratch *[]byte) (audio.PCM16, error) {
	pcm, err := audio.ReadWAVPCM(r, s.cfg.MaxUploadBytes, (*scratch)[:0])
	if err != nil {
		return audio.PCM16{}, err
	}
	*scratch = pcm.Data
	if pcm.NumSamples() == 0 {
		return audio.PCM16{}, fmt.Errorf("%w: empty data chunk", audio.ErrMalformed)
	}
	return pcm, nil
}

// finishClip converts structurally decoded PCM into the backend's input:
// float samples at the backend's rate. This is the expensive half of
// decoding that cache hits skip entirely.
func (s *Server) finishClip(pcm audio.PCM16) (*mvpears.Clip, error) {
	clip := pcm.Decode()
	if rate := s.cfg.Backend.SampleRate(); clip.SampleRate != rate {
		var err error
		clip, err = clip.Resample(rate)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", audio.ErrMalformed, err)
		}
	}
	return clip, nil
}

// cacheKey derives the verdict-cache key for one upload ("" when caching
// is off). The key covers the model fingerprint plus the original
// (pre-resample) rate and canonical PCM content, which deterministically
// decide the pipeline input.
func (s *Server) cacheKey(pcm audio.PCM16) string {
	if s.vc == nil {
		return ""
	}
	return vcache.KeyPCM16(s.modelFP, pcm.SampleRate, pcm.Data)
}

// detectionSize approximates one cached verdict's resident bytes for the
// cache's byte bound: key, scores, transcriptions, struct overhead.
func detectionSize(key string, det *mvpears.Detection) int64 {
	size := int64(len(key)) + 128
	size += int64(len(det.Scores)) * 8
	for k, v := range det.Transcriptions {
		size += int64(len(k)+len(v)) + 32
	}
	return size
}

// submit runs fn on the worker pool under the per-request deadline and
// translates admission / deadline failures into HTTP responses. It
// reports whether fn completed; on false the response has been written.
func (s *Server) submit(w http.ResponseWriter, r *http.Request, fn func(ctx context.Context)) bool {
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	err := s.pool.Do(ctx, fn)
	switch {
	case err == nil:
		return true
	case errors.Is(err, ErrQueueFull):
		s.queueRejected.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "server overloaded, retry later")
	case errors.Is(err, ErrPoolClosed):
		writeError(w, http.StatusServiceUnavailable, "server is draining")
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "detection exceeded the %v request deadline", s.cfg.RequestTimeout)
	default: // context.Canceled: the client is gone, best-effort status
		writeError(w, http.StatusServiceUnavailable, "request cancelled")
	}
	return false
}

// countVerdict records one served verdict.
func (s *Server) countVerdict(det *mvpears.Detection) {
	verdict := VerdictBenign
	if det.Adversarial {
		verdict = VerdictAdversarial
	}
	s.detectionsTotal.With(verdict).Inc()
}

// observe records a freshly computed verdict: the verdict count plus the
// per-stage timings. Cached and flight-shared verdicts count only the
// verdict — their stage cost was paid (and observed) once, by the request
// that actually ran the detection.
func (s *Server) observe(det *mvpears.Detection) {
	s.countVerdict(det)
	s.stageSeconds.With("recognition").Observe(det.Timing.Recognition.Seconds())
	s.stageSeconds.With("similarity").Observe(det.Timing.Similarity.Seconds())
	s.stageSeconds.With("classify").Observe(det.Timing.Classify.Seconds())
}

// serveDetection writes one 200 verdict response. fresh marks a verdict
// this request computed itself (observed with stage timings); a cached or
// flight-shared result is marked Cached on the wire.
func (s *Server) serveDetection(w http.ResponseWriter, det *mvpears.Detection, fresh bool) {
	if fresh {
		s.observe(det)
	} else {
		s.countVerdict(det)
	}
	out := NewDetectionJSON(det, s.cfg.Backend.AuxiliaryNames())
	out.Cached = !fresh
	writeJSON(w, http.StatusOK, out)
}

// detect runs one detection under the request deadline, collapsing
// concurrent duplicates onto a single worker-pool job when the verdict
// cache is enabled (the leader also populates the cache). fresh reports
// whether this call's own detection ran, as opposed to sharing a
// concurrent request's flight.
func (s *Server) detect(rctx context.Context, key string, clip *mvpears.Clip) (det *mvpears.Detection, fresh bool, err error) {
	ctx, cancel := context.WithTimeout(rctx, s.cfg.RequestTimeout)
	defer cancel()
	run := func(ctx context.Context) (*mvpears.Detection, error) {
		var det *mvpears.Detection
		var detErr error
		if err := s.pool.Do(ctx, func(jctx context.Context) {
			det, detErr = s.cfg.Backend.DetectCtx(jctx, clip)
		}); err != nil {
			return nil, err
		}
		return det, detErr
	}
	if s.vc == nil {
		det, err := run(ctx)
		return det, err == nil, err
	}
	det, shared, err := s.flight.Do(ctx, key, func(fctx context.Context) (*mvpears.Detection, error) {
		det, err := run(fctx)
		if err != nil {
			return nil, err
		}
		s.vc.Put(key, det, detectionSize(key, det))
		return det, nil
	})
	return det, err == nil && !shared, err
}

// writeDetectError maps a detection failure to its HTTP response. A panic
// recovered inside a flight is re-raised here so the middleware's panic
// accounting and 500 behavior are identical with and without collapsing.
func (s *Server) writeDetectError(w http.ResponseWriter, err error) {
	var pe *vcache.PanicError
	if errors.As(err, &pe) {
		panic(pe.Value)
	}
	switch {
	case errors.Is(err, ErrQueueFull):
		s.queueRejected.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "server overloaded, retry later")
	case errors.Is(err, ErrPoolClosed):
		writeError(w, http.StatusServiceUnavailable, "server is draining")
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "detection exceeded the %v request deadline", s.cfg.RequestTimeout)
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, "request cancelled")
	default:
		writeError(w, http.StatusInternalServerError, "detection failed: %v", err)
	}
}

// handleDetect serves POST /v1/detect: the request body is one WAV file,
// the response one DetectionJSON. The serving path is content-addressed:
// the upload is fingerprinted from its raw PCM, a cache hit answers with
// zero detection work (no float decode, no worker-pool admission), and
// concurrent misses for the same fingerprint collapse onto one detection.
func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST with a WAV body")
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes+1024) // payload + header slack
	scratch := getScratch()
	defer putScratch(scratch)
	pcm, err := s.readPCM(body, scratch)
	if err != nil {
		writeError(w, decodeStatus(err), "decoding WAV: %v", err)
		return
	}
	key := s.cacheKey(pcm)
	if key != "" {
		if det, ok := s.vc.Get(key); ok {
			s.serveDetection(w, det, false)
			return
		}
	}
	clip, err := s.finishClip(pcm)
	if err != nil {
		writeError(w, decodeStatus(err), "decoding WAV: %v", err)
		return
	}
	det, fresh, err := s.detect(r.Context(), key, clip)
	if err != nil {
		s.writeDetectError(w, err)
		return
	}
	s.serveDetection(w, det, fresh)
}

// handleDetectBatch serves POST /v1/detect/batch: a multipart/form-data
// body whose file parts are WAVs. Parts already in the verdict cache are
// answered from it; the remaining misses form one admission-queue job
// routed through the backend's batch API, so a saturated server rejects
// the batch's detection work atomically with 429. Batch misses populate
// the cache but do not singleflight-collapse (a batch is one job; its
// members are not independent requests worth a flight each).
func (s *Server) handleDetectBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST with multipart WAV parts")
		return
	}
	// Bound the whole batch body (files * per-file limit, plus framing)
	// before the multipart reader takes ownership of it.
	total := s.cfg.MaxUploadBytes*int64(s.cfg.MaxBatchFiles) + 1<<20
	r.Body = http.MaxBytesReader(w, r.Body, total)
	mr, err := r.MultipartReader()
	if err != nil {
		writeError(w, http.StatusBadRequest, "expected multipart/form-data: %v", err)
		return
	}

	var (
		names     []string
		pcms      []audio.PCM16
		scratches []*[]byte
	)
	defer func() {
		for _, b := range scratches {
			putScratch(b)
		}
	}()
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, "reading multipart body: %v", err)
			return
		}
		name := partName(part)
		if len(pcms) >= s.cfg.MaxBatchFiles {
			part.Close()
			writeError(w, http.StatusRequestEntityTooLarge, "batch exceeds %d files", s.cfg.MaxBatchFiles)
			return
		}
		scratch := getScratch()
		scratches = append(scratches, scratch)
		pcm, err := s.readPCM(part, scratch)
		part.Close()
		if err != nil {
			writeError(w, decodeStatus(err), "decoding %q: %v", name, err)
			return
		}
		names = append(names, name)
		pcms = append(pcms, pcm)
	}
	if len(pcms) == 0 {
		writeError(w, http.StatusBadRequest, "no WAV file parts in request")
		return
	}

	dets := make([]*mvpears.Detection, len(pcms))
	cached := make([]bool, len(pcms))
	keys := make([]string, len(pcms))
	var missIdx []int
	for i, pcm := range pcms {
		keys[i] = s.cacheKey(pcm)
		if keys[i] != "" {
			if det, ok := s.vc.Get(keys[i]); ok {
				dets[i] = det
				cached[i] = true
				continue
			}
		}
		missIdx = append(missIdx, i)
	}
	if len(missIdx) > 0 {
		clips := make([]*mvpears.Clip, len(missIdx))
		for j, i := range missIdx {
			clip, err := s.finishClip(pcms[i])
			if err != nil {
				writeError(w, decodeStatus(err), "decoding %q: %v", names[i], err)
				return
			}
			clips[j] = clip
		}
		var (
			missDets []*mvpears.Detection
			detErr   error
		)
		if !s.submit(w, r, func(ctx context.Context) {
			missDets, detErr = s.cfg.Backend.DetectBatchCtx(ctx, clips)
		}) {
			return
		}
		if detErr != nil {
			writeError(w, http.StatusInternalServerError, "batch detection failed: %v", detErr)
			return
		}
		for j, i := range missIdx {
			dets[i] = missDets[j]
			if keys[i] != "" {
				s.vc.Put(keys[i], missDets[j], detectionSize(keys[i], missDets[j]))
			}
		}
	}

	resp := BatchResponseJSON{Results: make([]FileDetectionJSON, len(dets))}
	aux := s.cfg.Backend.AuxiliaryNames()
	for i, det := range dets {
		if cached[i] {
			s.countVerdict(det)
		} else {
			s.observe(det)
		}
		fd := FileDetectionJSON{File: names[i], DetectionJSON: NewDetectionJSON(det, aux)}
		fd.Cached = cached[i]
		resp.Results[i] = fd
	}
	writeJSON(w, http.StatusOK, resp)
}

// partName labels one multipart part by filename, falling back to the
// form name and then the part index-agnostic placeholder.
func partName(part *multipart.Part) string {
	if n := part.FileName(); n != "" {
		return n
	}
	if n := part.FormName(); n != "" {
		return n
	}
	return "unnamed"
}

// handleHealthz reports process liveness.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports readiness: 200 while serving, 503 once draining.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.metrics.Render(w); err != nil {
		s.cfg.Logger.Printf("mvpearsd: rendering metrics: %v", err)
	}
}
