package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"sync"
	"time"

	"mvpears"
	"mvpears/internal/audio"
	"mvpears/internal/obs"
	"mvpears/internal/obs/drift"
	"mvpears/internal/vcache"
)

// writeJSON renders v with the given status. Encoding into a buffer first
// is unnecessary: the values are small and fully in-memory.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError renders a JSON error body. The request ID was placed on the
// response header by the instrumentation middleware before the handler
// ran, so every error path — 4xx, 429, 5xx — can echo it in the body.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorJSON{
		Error:     fmt.Sprintf(format, args...),
		RequestID: w.Header().Get("X-Request-ID"),
	})
}

// explainRequested reports whether the request asked for a verdict
// explanation (?explain=1; any value but "0"/"false" counts).
func explainRequested(r *http.Request) bool {
	v := r.URL.Query().Get("explain")
	return v != "" && v != "0" && v != "false"
}

// decodeStatus maps a WAV decode failure to its HTTP status.
func decodeStatus(err error) int {
	var tooBig *http.MaxBytesError
	if errors.Is(err, audio.ErrTooLarge) || errors.As(err, &tooBig) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// scratchPool recycles WAV payload buffers across requests: the serving
// hot path reads each upload into a pooled buffer, fingerprints it, and —
// on a cache hit — answers without ever converting to float64 samples.
var scratchPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 64<<10); return &b },
}

func getScratch() *[]byte { return scratchPool.Get().(*[]byte) }

func putScratch(b *[]byte) { scratchPool.Put(b) }

// readPCM structurally decodes one size-limited WAV stream into the
// pooled scratch buffer, without float conversion. The scratch pointer is
// updated to the (possibly grown) payload buffer so the pool keeps it.
func (s *Server) readPCM(r io.Reader, scratch *[]byte) (audio.PCM16, error) {
	pcm, err := audio.ReadWAVPCM(r, s.cfg.MaxUploadBytes, (*scratch)[:0])
	if err != nil {
		return audio.PCM16{}, err
	}
	*scratch = pcm.Data
	if pcm.NumSamples() == 0 {
		return audio.PCM16{}, fmt.Errorf("%w: empty data chunk", audio.ErrMalformed)
	}
	return pcm, nil
}

// finishClip converts structurally decoded PCM into the backend's input:
// float samples at the backend's rate. This is the expensive half of
// decoding that cache hits skip entirely.
func (s *Server) finishClip(st *backendState, pcm audio.PCM16) (*mvpears.Clip, error) {
	clip, _, err := s.finishClipInto(st, pcm, nil)
	return clip, err
}

// samplePool recycles decoded float sample buffers across single-detect
// requests (the second-largest allocation on the miss path after the
// feature matrices). Batch parts keep plain decoding: their clips live
// inside a batch job whose lifetime is harder to pin down.
var samplePool = sync.Pool{
	New: func() any { b := make([]float64, 0, 8<<10); return &b },
}

// finishClipInto is finishClip decoding into buf (may be nil). It reports
// whether the returned clip's samples alias buf — false when the clip was
// resampled, in which case buf is already dead by return time.
func (s *Server) finishClipInto(st *backendState, pcm audio.PCM16, buf []float64) (*mvpears.Clip, bool, error) {
	clip := pcm.DecodeInto(buf)
	if rate := st.backend.SampleRate(); clip.SampleRate != rate {
		var err error
		clip, err = clip.Resample(rate)
		if err != nil {
			return nil, false, fmt.Errorf("%w: %v", audio.ErrMalformed, err)
		}
		return clip, false, nil
	}
	return clip, buf != nil, nil
}

// cacheKey derives the verdict-cache key for one upload ("" when caching
// is off). The key covers the model fingerprint plus the original
// (pre-resample) rate and canonical PCM content, which deterministically
// decide the pipeline input.
func (s *Server) cacheKey(st *backendState, pcm audio.PCM16) string {
	if s.vc == nil {
		return ""
	}
	return vcache.KeyPCM16(st.modelFP, pcm.SampleRate, pcm.Data)
}

// detectionSize approximates one cached verdict's resident bytes for the
// cache's byte bound: key, scores, transcriptions, explanation (when the
// detection ran under an explain request), struct overhead.
func detectionSize(key string, det *mvpears.Detection) int64 {
	size := int64(len(key)) + 128
	size += int64(len(det.Scores)) * 8
	for k, v := range det.Transcriptions {
		size += int64(len(k)+len(v)) + 32
	}
	if exp := det.Explanation; exp != nil {
		size += int64(len(exp.Method)) + 96
		for _, e := range append([]mvpears.EngineEvidence{exp.Target}, exp.Auxiliaries...) {
			size += int64(len(e.Engine)+len(e.Transcription)+len(e.Phonetic)) + 48
		}
	}
	return size
}

// submit runs fn on the worker pool under the per-request deadline and
// translates admission / deadline failures into HTTP responses. It
// reports whether fn completed; on false the response has been written.
func (s *Server) submit(w http.ResponseWriter, r *http.Request, fn func(ctx context.Context)) bool {
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	err := s.pool.Do(ctx, fn)
	switch {
	case err == nil:
		return true
	case errors.Is(err, ErrQueueFull):
		s.queueRejected.Inc()
		s.rejectedTotal.With(rejectQueueFull).Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "server overloaded, retry later")
	case errors.Is(err, ErrPoolClosed):
		writeError(w, http.StatusServiceUnavailable, "server is draining")
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "detection exceeded the %v request deadline", s.cfg.RequestTimeout)
	default: // context.Canceled: the client is gone, best-effort status
		writeError(w, http.StatusServiceUnavailable, "request cancelled")
	}
	return false
}

// countVerdict records one served verdict and returns its wire string.
// It also feeds the verdict-quality SLO (a verdict served while any
// drift family is tripped spends quality budget) and the verdict
// base-rate drift family.
func (s *Server) countVerdict(det *mvpears.Detection) string {
	verdict := VerdictBenign
	if det.Adversarial {
		verdict = VerdictAdversarial
	}
	s.detectionsTotal.With(verdict).Inc()
	s.sloVerdicts.Add(1)
	if s.driftMon.AnyDrifted() {
		s.sloVerdictsDrifted.Add(1)
	}
	s.driftMon.ObserveEvent("adversarial_rate", det.Adversarial)
	return verdict
}

// observe records a freshly computed verdict: the verdict count, the
// per-stage timings, and the per-auxiliary similarity-score distributions.
// Cached, flight-shared and remotely-answered verdicts count only the
// verdict — their stage cost was paid (and observed) once, by the replica
// and request that actually ran the detection, and re-observing their
// scores would weight the similarity distributions by request popularity
// instead of by content.
func (s *Server) observe(st *backendState, det *mvpears.Detection) string {
	verdict := s.countVerdict(det)
	s.observeDetection(st, det)
	return verdict
}

// observeDetection records one fresh detection's stage timings, cascade
// behavior and similarity-score distributions — without counting a served
// verdict. The cluster owner path uses it directly: a detection run on
// behalf of a peer is observed where it ran, but the verdict is counted
// where it is served.
func (s *Server) observeDetection(st *backendState, det *mvpears.Detection) {
	s.stageSeconds.With("recognition").Observe(det.Timing.Recognition.Seconds())
	s.stageSeconds.With("similarity").Observe(det.Timing.Similarity.Seconds())
	s.stageSeconds.With("classify").Observe(det.Timing.Classify.Seconds())
	casc := det.Cascade
	if casc != nil {
		s.cascadeEnginesRun.Observe(float64(len(casc.EnginesRun)))
		if casc.ShortCircuit {
			s.cascadeShortCircuits.Inc()
		}
		if casc.SampledFull {
			s.cascadeSampledFull.Inc()
		}
		s.driftMon.ObserveEvent("short_circuit_rate", casc.ShortCircuit)
	}
	aux := st.auxNames
	min, observed := 1.0, 0
	for i, score := range det.Scores {
		// Imputed dimensions hold benign fill means, not measurements —
		// feeding them into the similarity distributions would fabricate
		// perfectly-benign-looking scores for engines that never ran.
		if casc != nil && i < len(casc.Imputed) && casc.Imputed[i] {
			continue
		}
		observed++
		if i < len(aux) {
			s.engineSimilarity.With(aux[i]).Observe(score)
			s.driftMon.ObserveScore("engine:"+aux[i], score)
		}
		if score < min {
			min = score
		}
	}
	if observed > 0 {
		s.minSimilarity.Observe(min)
		s.driftMon.ObserveScore("min_score", min)
	}
}

// observeTrace feeds the request's pipeline spans into the stage and
// engine histogram families, and forwards per-engine durations to the
// backend's cost observer so the cascade scheduler sees production
// latency, not just boot-time calibration. Called once per request that
// ran its own detection work (so cache hits keep costing zero
// observations).
func (s *Server) observeTrace(st *backendState, t *obs.Trace) {
	for _, sp := range t.Spans() {
		if sp.Engine != "" {
			s.engineSeconds.With(sp.Engine).Observe(sp.Dur.Seconds())
			if st.costObserver != nil {
				st.costObserver.ObserveEngineCost(sp.Engine, sp.Dur)
			}
			continue
		}
		s.pipelineSeconds.With(sp.Stage).Observe(sp.Dur.Seconds())
	}
}

// minScore returns the smallest auxiliary score and its engine name.
func minScore(scores []float64, aux []string) (string, float64) {
	engine, min := "", 1.0
	for i, score := range scores {
		if score <= min {
			min = score
			if i < len(aux) {
				engine = aux[i]
			}
		}
	}
	return engine, min
}

// audit appends one adversarial verdict to the audit sink (when enabled).
func (s *Server) audit(st *backendState, t *obs.Trace, route, file string, det *mvpears.Detection, verdict string, cached bool) {
	if s.cfg.Audit == nil || !det.Adversarial {
		return
	}
	aux := st.auxNames
	minEngine, min := minScore(det.Scores, aux)
	err := s.cfg.Audit.Write(obs.AuditEntry{
		Time:           time.Now().UTC(),
		RequestID:      t.ID(),
		Route:          route,
		File:           file,
		Verdict:        verdict,
		Scores:         det.Scores,
		MinScore:       min,
		MinEngine:      minEngine,
		Transcriptions: det.Transcriptions,
		Cached:         cached,
	})
	if err != nil {
		s.cfg.Logger.Printf("mvpearsd: audit sink: %v", err)
	}
}

// explanationFor resolves a verdict explanation for the response: the one
// computed with the detection when present, otherwise derived after the
// fact (cache hits, shared flights) via the backend's Explainer.
func (s *Server) explanationFor(st *backendState, det *mvpears.Detection) *ExplanationJSON {
	exp := det.Explanation
	if exp == nil {
		if ex, ok := st.backend.(Explainer); ok {
			exp = ex.Explain(det)
		}
	}
	return NewExplanationJSON(exp)
}

// detectHow classifies how one /v1/detect request got its verdict.
type detectHow int

const (
	// howFresh: this request ran the detection on this replica.
	howFresh detectHow = iota
	// howCached: answered from the local verdict cache.
	howCached
	// howShared: joined a concurrent local request's in-flight detection.
	howShared
	// howRemoteHit: the key's owning replica answered from its cache.
	howRemoteHit
	// howRemoteFresh: the detection ran on another replica (forwarded to
	// the owner, or a hedged dispatch won the race).
	howRemoteFresh
)

// fresh reports whether this replica ran a detection for this request
// (the only case that observes stage timings and engine spans).
func (h detectHow) fresh() bool { return h == howFresh }

// cachedOnWire is the response's Cached flag: the verdict was served
// without running a fresh detection anywhere for this request.
func (h detectHow) cachedOnWire() bool {
	return h == howCached || h == howShared || h == howRemoteHit
}

// remote reports whether another replica answered.
func (h detectHow) remote() bool { return h == howRemoteHit || h == howRemoteFresh }

// serveDetection writes one 200 verdict response. how drives the metric
// and annotation split: a fresh verdict is observed with stage timings
// and span histograms, everything else only counts its verdict (the cost
// was observed by whichever request — and replica — ran the detection).
func (s *Server) serveDetection(st *backendState, w http.ResponseWriter, r *http.Request, det *mvpears.Detection, how detectHow) {
	trace := obs.TraceFrom(r.Context())
	var verdict string
	if how.fresh() {
		verdict = s.observe(st, det)
		s.observeTrace(st, trace)
		if c := det.Cascade; c != nil && c.ShortCircuit {
			trace.SetShortCircuit()
		}
	} else {
		verdict = s.countVerdict(det)
	}
	if how.remote() {
		trace.SetRemote()
	}
	if how == howRemoteHit {
		trace.SetCached()
	}
	trace.SetVerdict(verdict)
	s.audit(st, trace, "detect", "", det, verdict, !how.fresh())
	out := NewDetectionJSON(det, st.auxNames)
	out.Cached = how.cachedOnWire()
	out.Remote = how.remote()
	if explainRequested(r) {
		out.Explanation = s.explanationFor(st, det)
	}
	writeJSON(w, http.StatusOK, out)
}

// detect runs one detection under the request deadline, collapsing
// concurrent duplicates onto a single worker-pool job when the verdict
// cache is enabled (the leader also populates the cache). With the
// cluster tier enabled and fwd non-nil, the flight leader first tries
// the key's owning replica (clusterFetch) and hedges a slow self-owned
// detection to an idle peer (hedgedRun) — so the whole fleet's duplicate
// storm for one key collapses onto a single detection at the owner.
func (s *Server) detect(st *backendState, rctx context.Context, key string, clip *mvpears.Clip, release func(), fwd *forwardPCM) (det *mvpears.Detection, how detectHow, err error) {
	ctx, cancel := context.WithTimeout(rctx, s.cfg.RequestTimeout)
	defer cancel()
	run := func(ctx context.Context) (*mvpears.Detection, error) {
		var det *mvpears.Detection
		var detErr error
		runStart := time.Now()
		if err := s.pool.Do(ctx, func(jctx context.Context) {
			// The job owns the clip: a caller that times out after
			// enqueueing has already returned by the time the worker
			// runs, so the pooled samples can only be recycled here.
			if release != nil {
				defer release()
			}
			det, detErr = st.backend.DetectCtx(jctx, clip)
		}); err != nil {
			if release != nil && (errors.Is(err, ErrQueueFull) || errors.Is(err, ErrPoolClosed)) {
				release() // never enqueued: the clip was never shared
			}
			return nil, err
		}
		if detErr == nil {
			// Feed the hedge budget: expected detection cost tracks what
			// detections actually cost here, in production.
			s.observeDetectCost(time.Since(runStart))
		}
		return det, detErr
	}
	if s.vc == nil {
		det, err := run(ctx)
		return det, howFresh, err
	}
	leaderHow := howFresh
	det, shared, err := s.flight.Do(ctx, key, func(fctx context.Context) (*mvpears.Detection, error) {
		// The flight's context is deliberately detached from any single
		// caller's cancellation; re-attach this request's observability
		// values (trace, explain flag) so the leader's detection records
		// spans — and an explanation — for the request that led it.
		fctx = obs.Transfer(fctx, rctx)
		if fwd != nil {
			if rdet, rhow, ok := s.clusterFetch(fctx, key, fwd); ok {
				leaderHow = rhow
				if release != nil {
					// The clip was never enqueued: only this goroutine
					// ever saw the samples.
					release()
				}
				return rdet, nil
			}
		}
		det, remote, err := s.hedgedRun(fctx, st, key, fwd, run)
		if err != nil {
			return nil, err
		}
		if remote {
			// The hedged peer answered first. The clip's release stays
			// with the (cancelled) local job per the ownership rule above.
			leaderHow = howRemoteFresh
		}
		s.vc.Put(key, det, detectionSize(key, det))
		return det, nil
	})
	if shared {
		obs.TraceFrom(rctx).SetCollapsed()
		if release != nil {
			// A follower's fn — and so its run and its clip — was never
			// touched by the flight; only its own goroutine ever saw the
			// samples, so they can be recycled unconditionally.
			release()
		}
		return det, howShared, err
	}
	return det, leaderHow, err
}

// writeDetectError maps a detection failure to its HTTP response. A panic
// recovered inside a flight is re-raised here so the middleware's panic
// accounting and 500 behavior are identical with and without collapsing.
func (s *Server) writeDetectError(w http.ResponseWriter, err error) {
	var pe *vcache.PanicError
	if errors.As(err, &pe) {
		panic(pe.Value)
	}
	switch {
	case errors.Is(err, ErrQueueFull):
		s.queueRejected.Inc()
		s.rejectedTotal.With(rejectQueueFull).Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "server overloaded, retry later")
	case errors.Is(err, ErrPoolClosed):
		writeError(w, http.StatusServiceUnavailable, "server is draining")
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "detection exceeded the %v request deadline", s.cfg.RequestTimeout)
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, "request cancelled")
	default:
		writeError(w, http.StatusInternalServerError, "detection failed: %v", err)
	}
}

// handleDetect serves POST /v1/detect: the request body is one WAV file,
// the response one DetectionJSON. The serving path is content-addressed:
// the upload is fingerprinted from its raw PCM, a cache hit answers with
// zero detection work (no float decode, no worker-pool admission), and
// concurrent misses for the same fingerprint collapse onto one detection.
func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST with a WAV body")
		return
	}
	st := s.state()
	trace := obs.TraceFrom(r.Context())
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes+1024) // payload + header slack
	scratch := getScratch()
	defer putScratch(scratch)
	decodeStart := time.Now()
	pcm, err := s.readPCM(body, scratch)
	if err != nil {
		writeError(w, decodeStatus(err), "decoding WAV: %v", err)
		return
	}
	key := s.cacheKey(st, pcm)
	if key != "" {
		// Query-pattern watch: a coarse perceptual key colliding with an
		// earlier upload whose exact key differs is the mutate-one-sample
		// probing signature. Observed before the cache lookup so exact
		// retries (which hit the cache) dilute the suspicion window
		// honestly. Requires the cache only for the exact content key.
		s.probe.Observe(drift.CoarseKey(pcm.Data), key)
	}
	if key != "" {
		if det, ok := s.vc.Get(key); ok {
			trace.SetCached()
			s.serveDetection(st, w, r, det, howCached)
			return
		}
	}
	// Snapshot the PCM for the cluster tier before the pooled scratch can
	// be recycled: a forward or hedge may outlive this handler's buffers.
	fwd := s.newForwardPCM(key, pcm)
	samples := samplePool.Get().(*[]float64)
	clip, pooled, err := s.finishClipInto(st, pcm, (*samples)[:0])
	if err != nil {
		samplePool.Put(samples)
		writeError(w, decodeStatus(err), "decoding WAV: %v", err)
		return
	}
	var release func()
	if pooled {
		release = func() { *samples = clip.Samples[:0]; samplePool.Put(samples) }
	} else {
		samplePool.Put(samples)
	}
	trace.Record(obs.StageDecode, "", decodeStart)
	rctx := r.Context()
	if explainRequested(r) {
		rctx = obs.WithExplain(rctx)
	}
	det, how, err := s.detect(st, rctx, key, clip, release, fwd)
	if err != nil {
		s.writeDetectError(w, err)
		return
	}
	s.serveDetection(st, w, r, det, how)
}

// handleDetectBatch serves POST /v1/detect/batch: a multipart/form-data
// body whose file parts are WAVs. Parts already in the verdict cache are
// answered from it; the remaining misses form one admission-queue job
// routed through the backend's batch API, so a saturated server rejects
// the batch's detection work atomically with 429. Batch misses populate
// the cache but do not singleflight-collapse (a batch is one job; its
// members are not independent requests worth a flight each).
func (s *Server) handleDetectBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST with multipart WAV parts")
		return
	}
	st := s.state()
	trace := obs.TraceFrom(r.Context())
	explain := explainRequested(r)
	if explain {
		// The explain flag rides the request context into the batch job, so
		// fresh detections carry their explanations out of the backend.
		r = r.WithContext(obs.WithExplain(r.Context()))
	}
	// Bound the whole batch body (files * per-file limit, plus framing)
	// before the multipart reader takes ownership of it.
	total := s.cfg.MaxUploadBytes*int64(s.cfg.MaxBatchFiles) + 1<<20
	r.Body = http.MaxBytesReader(w, r.Body, total)
	mr, err := r.MultipartReader()
	if err != nil {
		writeError(w, http.StatusBadRequest, "expected multipart/form-data: %v", err)
		return
	}
	decodeStart := time.Now()

	var (
		names     []string
		pcms      []audio.PCM16
		scratches []*[]byte
	)
	defer func() {
		for _, b := range scratches {
			putScratch(b)
		}
	}()
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, "reading multipart body: %v", err)
			return
		}
		name := partName(part)
		if len(pcms) >= s.cfg.MaxBatchFiles {
			part.Close()
			writeError(w, http.StatusRequestEntityTooLarge, "batch exceeds %d files", s.cfg.MaxBatchFiles)
			return
		}
		scratch := getScratch()
		scratches = append(scratches, scratch)
		pcm, err := s.readPCM(part, scratch)
		part.Close()
		if err != nil {
			writeError(w, decodeStatus(err), "decoding %q: %v", name, err)
			return
		}
		names = append(names, name)
		pcms = append(pcms, pcm)
	}
	if len(pcms) == 0 {
		writeError(w, http.StatusBadRequest, "no WAV file parts in request")
		return
	}

	dets := make([]*mvpears.Detection, len(pcms))
	cached := make([]bool, len(pcms))
	keys := make([]string, len(pcms))
	var missIdx []int
	for i, pcm := range pcms {
		keys[i] = s.cacheKey(st, pcm)
		if keys[i] != "" {
			if det, ok := s.vc.Get(keys[i]); ok {
				dets[i] = det
				cached[i] = true
				continue
			}
		}
		missIdx = append(missIdx, i)
	}
	if len(missIdx) > 0 {
		clips := make([]*mvpears.Clip, len(missIdx))
		for j, i := range missIdx {
			clip, err := s.finishClip(st, pcms[i])
			if err != nil {
				writeError(w, decodeStatus(err), "decoding %q: %v", names[i], err)
				return
			}
			clips[j] = clip
		}
		trace.Record(obs.StageDecode, "", decodeStart)
		var (
			missDets []*mvpears.Detection
			detErr   error
		)
		if !s.submit(w, r, func(ctx context.Context) {
			missDets, detErr = st.backend.DetectBatchCtx(ctx, clips)
		}) {
			return
		}
		if detErr != nil {
			writeError(w, http.StatusInternalServerError, "batch detection failed: %v", detErr)
			return
		}
		for j, i := range missIdx {
			dets[i] = missDets[j]
			if keys[i] != "" {
				s.vc.Put(keys[i], missDets[j], detectionSize(keys[i], missDets[j]))
			}
		}
	}

	if len(missIdx) > 0 {
		s.observeTrace(st, trace)
	} else {
		trace.SetCached() // every part answered from the verdict cache
	}
	resp := BatchResponseJSON{Results: make([]FileDetectionJSON, len(dets))}
	aux := st.auxNames
	anyAdversarial := false
	for i, det := range dets {
		var verdict string
		if cached[i] {
			verdict = s.countVerdict(det)
		} else {
			verdict = s.observe(st, det)
		}
		if det.Adversarial {
			anyAdversarial = true
		}
		s.audit(st, trace, "detect_batch", names[i], det, verdict, cached[i])
		fd := FileDetectionJSON{File: names[i], DetectionJSON: NewDetectionJSON(det, aux)}
		fd.Cached = cached[i]
		if explain {
			fd.Explanation = s.explanationFor(st, det)
		}
		resp.Results[i] = fd
	}
	// The access log gets the batch's worst verdict.
	if anyAdversarial {
		trace.SetVerdict(VerdictAdversarial)
	} else {
		trace.SetVerdict(VerdictBenign)
	}
	writeJSON(w, http.StatusOK, resp)
}

// partName labels one multipart part by filename, falling back to the
// form name and then the part index-agnostic placeholder.
func partName(part *multipart.Part) string {
	if n := part.FileName(); n != "" {
		return n
	}
	if n := part.FormName(); n != "" {
		return n
	}
	return "unnamed"
}

// handleHealthz reports process liveness.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports readiness: 200 while serving, 503 once draining
// or while a hot model reload is loading its replacement artifact (the
// window a fleet load balancer should steer around; requests that do
// arrive still serve on the old model).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	if s.reloadInProgress.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "reloading")
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.metrics.Render(w); err != nil {
		s.cfg.Logger.Printf("mvpearsd: rendering metrics: %v", err)
	}
}
