package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mvpears"
	"mvpears/internal/audio"
	"mvpears/internal/vcache"
)

// clusterPair boots two clustered replicas over real loopback TCP peer
// listeners. mutate (optional) adjusts each replica's Config before boot.
func clusterPair(t testing.TB, backendA, backendB Backend, mutate func(*Config)) (sA, sB *Server, tsA, tsB *httptest.Server) {
	t.Helper()
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrA, addrB := lnA.Addr().String(), lnB.Addr().String()
	build := func(backend Backend, ln net.Listener, peer string) (*Server, *httptest.Server) {
		cfg := Config{
			Backend: backend,
			Workers: 4,
			Cluster: &ClusterConfig{Listener: ln, Peers: []string{peer}},
			Logger:  log.New(io.Discard, "", 0),
		}
		if mutate != nil {
			mutate(&cfg)
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		return s, ts
	}
	sA, tsA = build(backendA, lnA, addrB)
	sB, tsB = build(backendB, lnB, addrA)
	return sA, sB, tsA, tsB
}

// bodyOwnedBy searches deterministic WAV bodies for one whose verdict key
// is owned by the wanted replica (ring placement depends on the ephemeral
// peer ports, so the content must be picked per run).
func bodyOwnedBy(t testing.TB, s *Server, fp string, wantSelf bool) []byte {
	t.Helper()
	for n := 256; n < 256+64; n++ {
		body := wavBody(t, 8000, n)
		pcm, err := audio.ReadWAVPCM(bytes.NewReader(body), 1<<20, nil)
		if err != nil {
			t.Fatal(err)
		}
		key := vcache.KeyPCM16(fp, pcm.SampleRate, pcm.Data)
		if _, self := s.node.Owner(key); self == wantSelf {
			return body
		}
	}
	t.Fatal("no body with the wanted ring placement in 64 candidates")
	return nil
}

// TestClusterRemoteHit is the distributed-cache acceptance check: a
// verdict cached on the owning replica is served to another replica as a
// remote hit — no second detection anywhere.
func TestClusterRemoteHit(t *testing.T) {
	stubA, callsA := countingStub()
	stubB, callsB := countingStub()
	sA, sB, tsA, tsB := clusterPair(t, &fpStub{stubA, "model-a"}, &fpStub{stubB, "model-a"}, nil)
	_ = sA
	// A body whose key B does NOT own, so posting to its owner first and
	// to B second exercises the forward path deterministically.
	body := bodyOwnedBy(t, sB, "model-a", false)

	first := decodeBody[DetectionJSON](t, postWAV(t, tsA.URL, body))
	if first.Cached || first.Remote {
		t.Fatalf("first post = %+v, want fresh local", first)
	}
	second := decodeBody[DetectionJSON](t, postWAV(t, tsB.URL, body))
	if !second.Cached || !second.Remote {
		t.Fatalf("second post on the non-owner = cached=%v remote=%v, want a remote hit", second.Cached, second.Remote)
	}
	if second.Verdict != first.Verdict || len(second.Scores) != len(first.Scores) {
		t.Fatalf("remote verdict diverged: %+v vs %+v", second, first)
	}
	if a, b := callsA.Load(), callsB.Load(); a+b != 1 {
		t.Fatalf("fleet ran %d detections (A=%d B=%d), want 1", a+b, a, b)
	}
	// The requester populated its local cache: a repeat is a local hit.
	third := decodeBody[DetectionJSON](t, postWAV(t, tsB.URL, body))
	if !third.Cached || third.Remote {
		t.Fatalf("third post = cached=%v remote=%v, want a local hit", third.Cached, third.Remote)
	}
	metrics := metricsBody(t, tsB.URL)
	if !strings.Contains(metrics, `mvpears_cluster_forwards_total{outcome="hit"} 1`) {
		t.Error("requester metrics missing the forward-hit count")
	}
	if !strings.Contains(metricsBody(t, tsA.URL), `mvpears_cluster_served_total{op="detect"} 1`) {
		t.Error("owner metrics missing the served-detect count")
	}
}

// TestClusterForwardedDetection: a miss on the non-owner forwards the
// whole detection to the owner, which runs it once and caches it; the
// requester reports Remote without Cached.
func TestClusterForwardedDetection(t *testing.T) {
	stubA, callsA := countingStub()
	stubB, callsB := countingStub()
	sA, sB, _, tsB := clusterPair(t, &fpStub{stubA, "model-a"}, &fpStub{stubB, "model-a"}, nil)
	_ = sA
	body := bodyOwnedBy(t, sB, "model-a", false)

	det := decodeBody[DetectionJSON](t, postWAV(t, tsB.URL, body))
	if !det.Remote || det.Cached {
		t.Fatalf("forwarded miss = cached=%v remote=%v, want remote fresh", det.Cached, det.Remote)
	}
	if a, b := callsA.Load(), callsB.Load(); a != 1 || b != 0 {
		t.Fatalf("detections ran A=%d B=%d, want the owner to run exactly one", a, b)
	}
}

// TestClusterPeerDownDegradesToLocal: with the owner down, the non-owner
// must serve the request locally — degraded, never failed.
func TestClusterPeerDownDegradesToLocal(t *testing.T) {
	stubB, callsB := countingStub()
	stubA, _ := countingStub()
	sA, sB, _, tsB := clusterPair(t, &fpStub{stubA, "model-a"}, &fpStub{stubB, "model-a"}, nil)
	body := bodyOwnedBy(t, sB, "model-a", false)
	// Kill the owner's peer listener (its HTTP side staying up is
	// irrelevant to the peer protocol).
	_ = sA.node.Close()

	det := decodeBody[DetectionJSON](t, postWAV(t, tsB.URL, body))
	if det.Remote || det.Cached {
		t.Fatalf("down-peer detect = cached=%v remote=%v, want fresh local", det.Cached, det.Remote)
	}
	if got := callsB.Load(); got != 1 {
		t.Fatalf("requester ran %d local detections, want 1", got)
	}
	if !strings.Contains(metricsBody(t, tsB.URL), `mvpears_cluster_forwards_total{outcome="error"} 1`) {
		t.Error("metrics missing the degraded-forward count")
	}
}

// TestClusterFingerprintMismatchDeclines: an owner running a different
// model must decline the forward (it cannot verify the key), and the
// requester detects locally — the mid-reload consistency guard.
func TestClusterFingerprintMismatchDeclines(t *testing.T) {
	stubA, callsA := countingStub()
	stubB, callsB := countingStub()
	sA, sB, _, tsB := clusterPair(t, &fpStub{stubA, "model-OLD"}, &fpStub{stubB, "model-new"}, nil)
	_ = sA
	body := bodyOwnedBy(t, sB, "model-new", false)

	det := decodeBody[DetectionJSON](t, postWAV(t, tsB.URL, body))
	if det.Remote {
		t.Fatal("skewed owner answered a key it cannot verify")
	}
	if a, b := callsA.Load(), callsB.Load(); a != 0 || b != 1 {
		t.Fatalf("detections ran A=%d B=%d, want only the requester's local fallback", a, b)
	}
}

// TestClusterDuplicateStormOneDetection is the fleet-wide singleflight
// acceptance check: 16 identical uploads split across two replicas run
// exactly one backend detection in the whole fleet.
func TestClusterDuplicateStormOneDetection(t *testing.T) {
	const storm = 16
	release := make(chan struct{})
	var callsA, callsB atomic.Int64
	mk := func(calls *atomic.Int64) *stubBackend {
		b := instantStub()
		inner := b.detect
		b.detect = func(ctx context.Context, clip *mvpears.Clip) (*mvpears.Detection, error) {
			calls.Add(1)
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return inner(ctx, clip)
		}
		return b
	}
	sA, sB, tsA, tsB := clusterPair(t, &fpStub{mk(&callsA), "model-a"}, &fpStub{mk(&callsB), "model-a"}, nil)
	// Content owned by A: A-side requests collapse on A's flight, B-side
	// requests collapse on B's flight whose leader forwards to A and joins
	// A's flight there.
	body := bodyOwnedBy(t, sA, "model-a", true)

	type result struct {
		code   int
		cached bool
		err    error
	}
	results := make(chan result, storm)
	var wg sync.WaitGroup
	for i := 0; i < storm; i++ {
		url := tsA.URL
		if i%2 == 1 {
			url = tsB.URL
		}
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			resp, err := http.Post(url+"/v1/detect", "audio/wav", bytes.NewReader(body))
			if err != nil {
				results <- result{err: err}
				return
			}
			defer resp.Body.Close()
			var det DetectionJSON
			err = json.NewDecoder(resp.Body).Decode(&det)
			results <- result{code: resp.StatusCode, cached: det.Cached, err: err}
		}(url)
	}
	// All followers everywhere must have joined a flight before the single
	// detection may finish: 7 on A's flight from A's own requests, 7 on
	// B's, plus B's forwarded leader joining A's flight = 15 collapsed.
	waitFor(t, func() bool { return sA.flight.Collapsed()+sB.flight.Collapsed() >= storm-1 })
	close(release)
	wg.Wait()
	close(results)

	var fresh int
	for r := range results {
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.code != http.StatusOK {
			t.Fatalf("status %d, want 200", r.code)
		}
		if !r.cached {
			fresh++
		}
	}
	if got := callsA.Load() + callsB.Load(); got != 1 {
		t.Fatalf("fleet-wide storm of %d ran %d detections (A=%d B=%d), want exactly 1", storm, got, callsA.Load(), callsB.Load())
	}
	if fresh != 1 {
		t.Fatalf("%d responses claimed a fresh verdict, want exactly 1", fresh)
	}
}

// TestClusterHedgedDispatch: a slow locally-owned detection dispatches a
// hedge to the peer after the configured delay; the peer's answer wins
// and the response is marked Remote.
func TestClusterHedgedDispatch(t *testing.T) {
	release := make(chan struct{})
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()
	slow := instantStub()
	innerSlow := slow.detect
	slow.detect = func(ctx context.Context, clip *mvpears.Clip) (*mvpears.Detection, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return innerSlow(ctx, clip)
	}
	fast, fastCalls := countingStub()
	sA, sB, tsA, _ := clusterPair(t, &fpStub{slow, "model-a"}, &fpStub{fast, "model-a"},
		func(cfg *Config) { cfg.Cluster.HedgeAfter = 20 * time.Millisecond })
	_ = sB
	body := bodyOwnedBy(t, sA, "model-a", true)

	det := decodeBody[DetectionJSON](t, postWAV(t, tsA.URL, body))
	if !det.Remote {
		t.Fatalf("hedged detect = remote=%v, want the peer's answer to win", det.Remote)
	}
	if got := fastCalls.Load(); got != 1 {
		t.Fatalf("hedge peer ran %d detections, want 1", got)
	}
	metrics := metricsBody(t, tsA.URL)
	for _, want := range []string{
		"mvpears_cluster_hedges_total 1",
		"mvpears_cluster_hedge_wins_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	close(release)
}
