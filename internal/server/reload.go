package server

import (
	"errors"
	"fmt"
	"time"

	"mvpears"
	"mvpears/internal/stream"
)

// Hot model reload. The per-model identity of the server — backend,
// fingerprint, auxiliary names, stream manager — lives in one immutable
// backendState snapshot behind an atomic pointer. A request loads the
// snapshot once and uses it throughout, so a reload mid-request is
// invisible: in-flight work finishes on the model it started with, new
// requests pick up the new model, and nothing is ever dropped.
//
// Cache consistency across the swap needs no epoch protocol: verdict
// keys are prefixed with the model fingerprint, so the new model's keys
// simply never match the old entries (locally or on any peer), and the
// stale entries age out under LRU pressure. /readyz answers 503 while
// the replacement artifact is loading, steering fleet load balancers
// toward peers during the CPU-heavy load — but requests that do arrive
// still serve on the old model.

// backendState is one model's worth of serving identity. Immutable
// after construction; swapped wholesale by Reload.
type backendState struct {
	backend Backend
	// modelFP prefixes every verdict-cache key ("" when caching is off).
	modelFP string
	// auxNames caches backend.AuxiliaryNames(): the per-call slice
	// allocation is measurable on the cache-hit path.
	auxNames []string
	// costObserver is the backend's cascade cost feedback channel; nil
	// when unimplemented.
	costObserver EngineCostObserver
	// stream manages live streaming sessions; nil when streaming is off.
	stream *stream.Manager
	// streamTargetName labels the target engine's windowed transcription.
	streamTargetName string
}

// state snapshots the current backend identity. Handlers call it once
// per request and thread the snapshot, never re-loading mid-request.
func (s *Server) state() *backendState { return s.be.Load() }

// ErrReloadNotConfigured is returned by Reload when Config.Reload is nil.
var ErrReloadNotConfigured = errors.New("server: reload not configured (set Config.Reload)")

// ErrReloadInProgress is returned by Reload while another reload runs.
var ErrReloadInProgress = errors.New("server: a reload is already in progress")

// buildState assembles a backendState around backend, fingerprinting it
// when the verdict cache is enabled and building the stream manager when
// streaming is configured.
func (s *Server) buildState(backend Backend) (*backendState, error) {
	st := &backendState{
		backend:  backend,
		auxNames: backend.AuxiliaryNames(),
	}
	if co, ok := backend.(EngineCostObserver); ok {
		st.costObserver = co
	}
	if s.vc != nil {
		// With the cache (and possibly a cluster) live, a fingerprint is
		// non-negotiable: unprefixed keys could serve another model's
		// verdicts.
		fper, ok := backend.(ModelFingerprinter)
		if !ok {
			return nil, errors.New("server: the verdict cache is enabled but the backend exposes no model fingerprint")
		}
		fp, err := fper.ModelFingerprint()
		if err != nil {
			return nil, fmt.Errorf("server: fingerprinting model: %w", err)
		}
		st.modelFP = fp
	}
	if s.cfg.Stream != nil {
		if err := s.buildStreamManager(st); err != nil {
			return nil, err
		}
	}
	// Install the model's calibration-time drift reference (when the
	// backend carries one) so live score distributions are compared
	// against the model actually serving. A reload replaces the
	// reference atomically with the backend swap's visibility.
	if dr, ok := backend.(DriftReferencer); ok {
		if ref := dr.DriftReference(); ref != nil {
			if err := s.driftMon.SetReference(ref); err != nil {
				return nil, fmt.Errorf("server: installing drift reference: %w", err)
			}
		}
	}
	return st, nil
}

// buildStreamManager attaches a streaming session manager for st's
// backend (metrics hooks shared across reloads).
func (s *Server) buildStreamManager(st *backendState) error {
	sb, ok := st.backend.(StreamBackend)
	if !ok {
		return fmt.Errorf("server: Config.Stream set but the backend does not support streaming")
	}
	st.streamTargetName = "target"
	if tn, ok := st.backend.(interface{ TargetName() string }); ok {
		st.streamTargetName = tn.TargetName()
	}
	cfg := s.cfg.Stream
	m, err := sb.NewStreamManager(mvpears.StreamOptions{
		Window:           cfg.Window,
		Hop:              cfg.Hop,
		MaxSessions:      cfg.MaxSessions,
		IdleTimeout:      cfg.IdleTimeout,
		MaxDuration:      cfg.MaxDuration,
		MinWindows:       cfg.MinWindows,
		DisableEarlyExit: cfg.DisableEarlyExit,
		Hooks: stream.Hooks{
			SessionOpened: func() { s.streamSessions.Inc() },
			SessionRejected: func() {
				s.streamRejected.Inc()
				s.rejectedTotal.With(rejectStreamSessions).Inc()
			},
			SessionClosed: func(evicted bool) {
				if evicted {
					s.streamEvicted.Inc()
				}
			},
			Window: func(adversarial, earlyExit bool, d time.Duration) {
				verdict := VerdictBenign
				if adversarial {
					verdict = VerdictAdversarial
				}
				s.streamWindows.With(verdict).Inc()
				if earlyExit {
					s.streamEarlyExits.Inc()
				}
				s.streamWindowSeconds.Observe(d.Seconds())
			},
		},
	})
	if err != nil {
		return fmt.Errorf("server: building stream manager: %w", err)
	}
	st.stream = m
	return nil
}

// Reload loads a fresh backend via Config.Reload and swaps it in with
// zero downtime: the expensive load happens off the hot path under
// /readyz 503 gating, the swap is one atomic pointer store, in-flight
// requests finish on the old model, and the fingerprint change makes the
// new model miss (and eventually evict) every stale cache entry —
// locally and fleet-wide — with no invalidation protocol.
func (s *Server) Reload() error {
	if s.cfg.Reload == nil {
		return ErrReloadNotConfigured
	}
	if !s.reloadInProgress.CompareAndSwap(false, true) {
		return ErrReloadInProgress
	}
	defer s.reloadInProgress.Store(false)
	backend, err := s.cfg.Reload()
	if err != nil {
		s.reloadFailures.Inc()
		return fmt.Errorf("server: loading replacement backend: %w", err)
	}
	st, err := s.buildState(backend)
	if err != nil {
		s.reloadFailures.Inc()
		return err
	}
	old := s.be.Swap(st)
	s.reloadsTotal.Inc()
	s.reloadCount.Add(1)
	if old != nil && old.stream != nil {
		// Live streaming sessions keep running on the old model's
		// manager; retire it once they finish (or after a grace bound).
		go s.retireStreamManager(old.stream)
	}
	if st.modelFP != "" && old != nil && st.modelFP == old.modelFP {
		s.cfg.Logger.Printf("mvpearsd: model reloaded (fingerprint unchanged %.12s; cache entries remain valid)", st.modelFP)
	} else {
		s.cfg.Logger.Printf("mvpearsd: model reloaded, fingerprint %.12s (stale cache entries now unreachable)", st.modelFP)
	}
	return nil
}

// Reloads reports how many reloads have completed (for /infoz).
func (s *Server) Reloads() uint64 { return s.reloadCount.Load() }

// ModelFingerprint reports the current model's fingerprint ("" when the
// cache — and so fingerprinting — is off).
func (s *Server) ModelFingerprint() string { return s.state().modelFP }

// retireStreamManagerGrace bounds how long a superseded stream manager
// waits for its live sessions before being closed anyway.
const retireStreamManagerGrace = 2 * time.Minute

func (s *Server) retireStreamManager(m *stream.Manager) {
	deadline := time.Now().Add(retireStreamManagerGrace)
	for m.OpenSessions() > 0 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Millisecond)
	}
	m.Close()
}
