package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"mime/multipart"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"mvpears"
	"mvpears/internal/audio"
)

var (
	e2eOnce sync.Once
	e2eSys  *mvpears.System
	e2eErr  error
)

// e2eSystem trains one quick-scale system for the whole test binary.
func e2eSystem(t *testing.T) *mvpears.System {
	t.Helper()
	if testing.Short() {
		t.Skip("quick-scale training skipped with -short")
	}
	e2eOnce.Do(func() {
		e2eSys, e2eErr = mvpears.Build(mvpears.WithQuickScale(), mvpears.WithSeed(1))
	})
	if e2eErr != nil {
		t.Fatalf("building system: %v", e2eErr)
	}
	return e2eSys
}

func encodeWAV(t *testing.T, c *mvpears.Clip) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := audio.WriteWAV(&buf, c); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestE2EPersistedModelServing is the acceptance scenario: persist a
// trained system, boot mvpearsd's server from the artifact on a random
// port, POST benign and adversarial fixture WAVs over real TCP, and
// assert the daemon's verdicts are identical to the in-memory system's.
// Finally SIGTERM drains the server cleanly and /metrics reported the
// traffic along the way.
func TestE2EPersistedModelServing(t *testing.T) {
	sys := e2eSystem(t)

	// Persist and reload: the server must boot from the artifact without
	// retraining.
	modelPath := filepath.Join(t.TempDir(), "model.gob")
	if err := sys.SaveFile(modelPath); err != nil {
		t.Fatal(err)
	}
	loaded, err := mvpears.Open(modelPath)
	if err != nil {
		t.Fatal(err)
	}

	s, err := New(Config{Backend: loaded, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()
	runDone := make(chan error, 1)
	go func() { runDone <- s.RunUntilSignal(ln, 10*time.Second, syscall.SIGTERM) }()

	// Fixtures. Round-trip each clip through WAV encoding first so the
	// in-memory reference detection sees bit-identical samples to what the
	// server decodes.
	benign, err := sys.GenerateSpeech("the door is open", 123)
	if err != nil {
		t.Fatal(err)
	}
	benignWAV := encodeWAV(t, benign)
	posts := []struct {
		name string
		wav  []byte
	}{{"benign", benignWAV}}

	host, err := sys.GenerateSpeech("we keep the old book here", 323)
	if err != nil {
		t.Fatal(err)
	}
	ae, err := sys.CraftWhiteBoxAE(host, "open the front door")
	if err != nil {
		t.Fatal(err)
	}
	if ae.Success {
		posts = append(posts, struct {
			name string
			wav  []byte
		}{"adversarial", encodeWAV(t, ae.AE)})
	} else {
		t.Log("white-box attack failed at quick scale; serving benign only")
	}

	for _, p := range posts {
		decoded, err := audio.ReadWAVLimited(bytes.NewReader(p.wav), 0)
		if err != nil {
			t.Fatal(err)
		}
		want, err := sys.Detect(decoded)
		if err != nil {
			t.Fatal(err)
		}
		if p.name == "benign" && want.Adversarial {
			t.Fatal("reference system called the benign fixture adversarial")
		}
		if p.name == "adversarial" && !want.Adversarial {
			t.Log("quick-scale AE transferred to the auxiliaries; asserting server parity only")
		}

		resp, err := http.Post(base+"/v1/detect", "audio/wav", bytes.NewReader(p.wav))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			t.Fatalf("%s: status %d: %s", p.name, resp.StatusCode, b)
		}
		got := decodeBody[DetectionJSON](t, resp)
		resp.Body.Close()

		// The served verdict must be identical to the in-memory system's:
		// this is the persistence round-trip guarantee under the serving
		// path.
		if got.Adversarial != want.Adversarial {
			t.Fatalf("%s: server verdict %v, in-memory %v", p.name, got.Adversarial, want.Adversarial)
		}
		if len(got.Scores) != len(want.Scores) {
			t.Fatalf("%s: score width %d vs %d", p.name, len(got.Scores), len(want.Scores))
		}
		for i := range got.Scores {
			if math.Abs(got.Scores[i]-want.Scores[i]) > 1e-12 {
				t.Fatalf("%s: score %d diverged: %g vs %g", p.name, i, got.Scores[i], want.Scores[i])
			}
		}
		for engine, text := range want.Transcriptions {
			if got.Transcriptions[engine] != text {
				t.Fatalf("%s: %s transcribed %q, in-memory %q", p.name, engine, got.Transcriptions[engine], text)
			}
		}
	}

	// Batch over the same fixtures: per-file verdicts in input order.
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for _, p := range posts {
		fw, err := mw.CreateFormFile("file", p.name+".wav")
		if err != nil {
			t.Fatal(err)
		}
		fw.Write(p.wav)
	}
	mw.Close()
	resp, err := http.Post(base+"/v1/detect/batch", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("batch status %d: %s", resp.StatusCode, b)
	}
	batch := decodeBody[BatchResponseJSON](t, resp)
	resp.Body.Close()
	if len(batch.Results) != len(posts) {
		t.Fatalf("batch results %d, want %d", len(batch.Results), len(posts))
	}
	for i, p := range posts {
		if batch.Results[i].File != p.name+".wav" {
			t.Fatalf("batch order: result %d is %q", i, batch.Results[i].File)
		}
	}

	// The daemon accounted for the traffic.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(raw)
	for _, want := range []string{
		fmt.Sprintf(`mvpears_requests_total{route="detect",code="200"} %d`, len(posts)),
		`mvpears_requests_total{route="detect_batch",code="200"} 1`,
		`mvpears_detections_total{verdict="benign"}`,
		`mvpears_request_duration_seconds_bucket{route="detect",le="+Inf"}`,
		fmt.Sprintf(`mvpears_request_duration_seconds_count{route="detect"} %d`, len(posts)),
		`mvpears_detect_stage_seconds_bucket{stage="recognition"`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// SIGTERM drains: RunUntilSignal returns nil and the port closes.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting after drain")
	}
}

// TestE2ESignalDrainsInFlight pins the drain ordering under a real
// listener and a real signal: a request running when SIGTERM lands must
// complete with 200 before RunUntilSignal returns.
func TestE2ESignalDrainsInFlight(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{}, 1)
	stub := instantStub()
	inner := stub.detect
	stub.detect = func(ctx context.Context, clip *mvpears.Clip) (*mvpears.Detection, error) {
		entered <- struct{}{}
		<-block
		return inner(ctx, clip)
	}
	s, err := New(Config{Backend: stub, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()
	runDone := make(chan error, 1)
	go func() { runDone <- s.RunUntilSignal(ln, 10*time.Second, syscall.SIGTERM) }()

	result := make(chan int, 1)
	go func() {
		resp, err := http.Post(base+"/v1/detect", "audio/wav", bytes.NewReader(wavBody(t, 8000, 256)))
		if err != nil {
			t.Error(err)
			result <- 0
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		result <- resp.StatusCode
	}()
	<-entered

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Give the drain a moment to begin, then release the backend.
	waitFor(t, s.Draining)
	close(block)

	if code := <-result; code != http.StatusOK {
		t.Fatalf("in-flight request finished with %d, want 200", code)
	}
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}
}
