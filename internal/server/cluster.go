package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"mvpears"
	"mvpears/internal/audio"
	"mvpears/internal/cluster"
	"mvpears/internal/obs"
	"mvpears/internal/vcache"
)

// Clustering glue: how one Server participates in a replica fleet.
//
// Requester side (clusterFetch): on a local cache miss, the consistent
// hash decides which replica owns the key. A remotely-owned key forwards
// the whole detection (key + PCM) to the owner in one round trip; the
// owner answers from its cache (a remote hit, a small fraction of a
// cascade miss) or runs the detection itself under its own singleflight —
// which is what collapses a fleet-wide duplicate storm to exactly one
// detection. The requester caches the answer locally, so repeats become
// local hits. Any peer failure degrades to local detection; a request is
// never failed because a peer is.
//
// Owner side (clusterHandler): strictly local service — cache, flight,
// backend — never re-forwarding, so membership skew cannot loop a
// request between replicas. The owner recomputes the key from the PCM
// under its own model fingerprint and declines on mismatch, keeping a
// mid-reload fleet from cross-pollinating verdicts between models.
//
// Hedging (hedgedRun): a locally-owned miss that is expected to be slow
// (cost EWMA over the hedge floor) dispatches a duplicate detection to
// an idle peer after a budgeted delay; first answer wins and cancels the
// other via context. The loser's work is not wasted fleet-wide — a
// remote loser still warms its replica's cache.

// ClusterConfig configures the replica fleet membership of a Server.
type ClusterConfig struct {
	// Addr is the peer-protocol listen address (required unless Listener
	// is set).
	Addr string
	// Self is the address advertised to peers (default: the bound
	// listener address; set it when Addr binds a wildcard interface).
	Self string
	// Peers lists the other replicas' advertised peer addresses.
	Peers []string
	// Listener optionally injects a pre-bound peer listener (tests).
	Listener net.Listener
	// HedgeAfter fixes the hedge delay. Zero derives it from the measured
	// detection cost: HedgeFactor * expected cost.
	HedgeAfter time.Duration
	// HedgeFactor scales the expected detection cost into the hedge delay
	// (default 1.5; only used when HedgeAfter is zero).
	HedgeFactor float64
	// HedgeFloor disarms hedging when the expected detection cost is
	// below it (default 20ms): duplicating cheap work on a peer costs
	// more fleet capacity than the tail latency it saves.
	HedgeFloor time.Duration
	// GetProbeBytes is the payload size above which a cheap Get probe
	// precedes the forward (default 256 KiB): for large clips, learning
	// "remote hit" first avoids shipping megabytes the owner already has
	// the answer for.
	GetProbeBytes int
	// DialTimeout / PeerTimeout / MaxInflight / DownFor / VirtualNodes
	// pass through to cluster.Config.
	DialTimeout  time.Duration
	PeerTimeout  time.Duration
	MaxInflight  int
	DownFor      time.Duration
	VirtualNodes int
}

// startCluster validates cc, binds the peer listener and joins the ring.
func (s *Server) startCluster(cc *ClusterConfig) error {
	if s.vc == nil {
		return errors.New("server: clustering requires the verdict cache (content-addressed keys decide ownership)")
	}
	ln := cc.Listener
	if ln == nil {
		if cc.Addr == "" {
			return errors.New("server: ClusterConfig needs Addr or Listener")
		}
		var err error
		ln, err = net.Listen("tcp", cc.Addr)
		if err != nil {
			return fmt.Errorf("server: binding cluster listener on %s: %w", cc.Addr, err)
		}
	}
	self := cc.Self
	if self == "" {
		self = ln.Addr().String()
	}
	peerTimeout := cc.PeerTimeout
	if peerTimeout <= 0 {
		peerTimeout = s.cfg.RequestTimeout
	}
	node, err := cluster.New(cluster.Config{
		Self:           self,
		Peers:          cc.Peers,
		Handler:        clusterHandler{s},
		DialTimeout:    cc.DialTimeout,
		RequestTimeout: peerTimeout,
		MaxInflight:    cc.MaxInflight,
		DownFor:        cc.DownFor,
		VirtualNodes:   cc.VirtualNodes,
		ObserveRTT: func(peer string, d time.Duration) {
			s.clusterRTTSeconds.With(peer).Observe(d.Seconds())
		},
		OnBusyDecline: func() {
			s.rejectedTotal.With(rejectPeerBusy).Inc()
		},
	})
	if err != nil {
		_ = ln.Close()
		return err
	}
	s.node = node
	s.hedgeAfter = cc.HedgeAfter
	s.hedgeFactor = cc.HedgeFactor
	if s.hedgeFactor <= 0 {
		s.hedgeFactor = 1.5
	}
	s.hedgeFloor = cc.HedgeFloor
	if s.hedgeFloor <= 0 {
		s.hedgeFloor = 20 * time.Millisecond
	}
	s.getProbeBytes = cc.GetProbeBytes
	if s.getProbeBytes <= 0 {
		s.getProbeBytes = 256 << 10
	}
	//lint:allow ctxflow the peer listener's lifetime is the server's own, not any single request's
	ctx, cancel := context.WithCancel(context.Background())
	s.clusterCancel = cancel
	go func() {
		if err := node.Serve(ctx, ln); err != nil {
			s.cfg.Logger.Printf("mvpearsd: cluster listener: %v", err)
		}
	}()
	s.cfg.Logger.Printf("mvpearsd: cluster enabled, self %s, %d peer(s)", self, len(cc.Peers))
	return nil
}

// ClusterSelf returns this replica's advertised peer address ("" when
// clustering is off).
func (s *Server) ClusterSelf() string {
	if s.node == nil {
		return ""
	}
	return s.node.Self()
}

// clusterHandler serves the peer protocol over the Server's local
// cache/flight/backend. It never re-forwards (see package comment).
type clusterHandler struct{ s *Server }

// GetCached probes the local verdict cache for a peer. The probe is a
// synchronous in-memory lookup, so the context goes unused.
func (h clusterHandler) GetCached(_ context.Context, key string) (*mvpears.Detection, bool) {
	s := h.s
	s.clusterServed.With("get").Inc()
	if s.draining.Load() {
		return nil, false
	}
	det, ok := s.vc.Get(key)
	return det, ok
}

// Detect answers a forwarded detection strictly locally: verify the key
// against our model, probe the cache, then run (or join) the detection
// under the local singleflight. tc is the requester's propagated trace
// context: the local trace adopts its ID (so this replica's logs join
// the originating request's trace) and, when tc.Sampled, the recorded
// spans are returned for the requester to stitch.
func (h clusterHandler) Detect(ctx context.Context, tc obs.TraceContext, key string, sampleRate int, pcm []byte) (*mvpears.Detection, bool, []obs.Span, error) {
	s := h.s
	s.clusterServed.With("detect").Inc()
	if s.draining.Load() {
		return nil, false, nil, errors.New("draining")
	}
	st := s.state()
	// The requester derived key under its model fingerprint; recompute it
	// under ours. A mismatch means the fleet is mid-reload with skewed
	// models — decline, and the requester detects locally.
	if localKey := vcache.KeyPCM16(st.modelFP, sampleRate, pcm); localKey != key {
		return nil, false, nil, errors.New("model fingerprint mismatch (reload in progress?)")
	}
	if det, ok := s.vc.Get(key); ok {
		return det, true, nil, nil
	}
	// pcm aliases the connection's frame buffer; DecodeInto below copies
	// it into fresh float samples before this call returns.
	clip, _, err := s.finishClipInto(st, audio.PCM16{SampleRate: sampleRate, Data: pcm}, nil)
	if err != nil {
		return nil, false, nil, err
	}
	// A local trace under the requester's trace ID (fresh when untraced):
	// the owner's engine spans feed its own stage metrics and cascade cost
	// observer either way, and the ID join makes slow-log lines on both
	// replicas greppable by one request ID.
	id := tc.TraceID
	if id == "" {
		id = obs.NewRequestID()
	}
	trace := obs.NewTrace(id)
	det, how, err := s.detect(st, obs.WithTrace(ctx, trace), key, clip, nil, nil)
	if err != nil {
		return nil, false, nil, err
	}
	if how == howFresh {
		s.observeDetection(st, det)
		s.observeTrace(st, trace)
	}
	var spans []obs.Span
	if tc.Sampled {
		spans = trace.Spans()
	}
	return det, how != howFresh, spans, nil
}

// forwardPCM is the canonical PCM payload a request carries into the
// cluster tier. The data is a private copy: the handler's pooled scratch
// dies at handler return, while forwards and hedges can outlive it
// inside a detached flight.
type forwardPCM struct {
	rate int
	data []byte
}

// newForwardPCM decides whether this request participates in the cluster
// tier and, if so, snapshots the PCM. Returns nil when clustering is off
// or there is no live peer to talk to.
func (s *Server) newForwardPCM(key string, pcm audio.PCM16) *forwardPCM {
	if s.node == nil || key == "" || !s.node.HasPeers() {
		return nil
	}
	return &forwardPCM{rate: pcm.SampleRate, data: append([]byte(nil), pcm.Data...)}
}

// clusterFetch tries to answer a locally-missed key from its remote
// owner. Outcomes: (det, how, true) on a remote answer; ok=false means
// "proceed locally" (self-owned key, peer down, peer declined).
func (s *Server) clusterFetch(ctx context.Context, key string, fwd *forwardPCM) (*mvpears.Detection, detectHow, bool) {
	owner, self := s.node.Owner(key)
	if self {
		return nil, howFresh, false
	}
	start := time.Now()
	tc := obs.TraceFrom(ctx).Context(obs.StageClusterForward)
	// For large payloads a Get probe first: a remote hit then costs one
	// small round trip instead of shipping the whole clip.
	if len(fwd.data) > s.getProbeBytes {
		det, ok, err := s.node.Get(ctx, owner, key, tc)
		if err == nil && ok {
			s.finishRemote(ctx, key, owner, det, start, nil)
			s.clusterForwards.With("hit").Inc()
			return det, howRemoteHit, true
		}
		if err != nil {
			s.clusterForwards.With("error").Inc()
			return nil, howFresh, false
		}
	}
	det, cached, spans, err := s.node.Detect(ctx, owner, key, fwd.rate, fwd.data, tc)
	if err != nil {
		// Degrade, never fail: the owner being down or declining makes
		// this replica detect locally.
		s.clusterForwards.With("error").Inc()
		return nil, howFresh, false
	}
	s.finishRemote(ctx, key, owner, det, start, spans)
	if cached {
		s.clusterForwards.With("hit").Inc()
		return det, howRemoteHit, true
	}
	s.clusterForwards.With("detected").Inc()
	return det, howRemoteFresh, true
}

// finishRemote records a remotely-answered detection: local cache
// population (repeats become local hits), the cluster_forward span, and
// the owner's own spans stitched in under it (anchored at this replica's
// round-trip start, so no cross-process clock agreement is assumed).
func (s *Server) finishRemote(ctx context.Context, key, peer string, det *mvpears.Detection, start time.Time, spans []obs.Span) {
	s.vc.Put(key, det, detectionSize(key, det))
	trace := obs.TraceFrom(ctx)
	trace.Record(obs.StageClusterForward, "", start)
	trace.RecordRemote(peer, start, spans)
	s.pipelineSeconds.With(obs.StageClusterForward).Observe(time.Since(start).Seconds())
}

// expectedDetectCost estimates one fresh detection's wall time: the
// larger of the serving-layer EWMA and the backend's live per-engine
// cost sum (which reacts faster to an engine slowing down).
func (s *Server) expectedDetectCost(st *backendState) time.Duration {
	cost := time.Duration(s.detectCostNS.Load())
	if lc, ok := st.backend.(interface {
		LiveEngineCosts() map[string]time.Duration
	}); ok {
		var sum time.Duration
		for _, d := range lc.LiveEngineCosts() {
			sum += d
		}
		if sum > cost {
			cost = sum
		}
	}
	return cost
}

// observeDetectCost folds one measured fresh-detection duration into the
// EWMA (alpha 1/4) that budgets the hedge delay.
func (s *Server) observeDetectCost(d time.Duration) {
	for {
		old := s.detectCostNS.Load()
		var next int64
		if old == 0 {
			next = int64(d)
		} else {
			next = old + (int64(d)-old)/4
		}
		if s.detectCostNS.CompareAndSwap(old, next) {
			return
		}
	}
}

// hedgeDelay resolves the hedge policy for one locally-owned miss:
// target peer and delay, or ok=false when hedging is disarmed (no
// cluster, no healthy peer, expected cost under the floor).
func (s *Server) hedgeDelay(st *backendState) (addr string, delay time.Duration, ok bool) {
	if s.node == nil || !s.node.HasPeers() {
		return "", 0, false
	}
	expected := s.expectedDetectCost(st)
	if s.hedgeAfter > 0 {
		delay = s.hedgeAfter
	} else {
		if expected < s.hedgeFloor {
			return "", 0, false
		}
		delay = time.Duration(float64(expected) * s.hedgeFactor)
	}
	addr = s.node.HedgeTarget()
	if addr == "" {
		return "", 0, false
	}
	return addr, delay, true
}

// hedgedRun runs one local detection, optionally racing a budget-gated
// duplicate dispatch to an idle peer. First result wins; the loser is
// cancelled through ctx. remote reports a hedge win (the peer answered
// first).
func (s *Server) hedgedRun(ctx context.Context, st *backendState, key string, fwd *forwardPCM,
	run func(ctx context.Context) (*mvpears.Detection, error)) (det *mvpears.Detection, remote bool, err error) {
	var (
		addr  string
		delay time.Duration
		armed bool
	)
	if fwd != nil {
		addr, delay, armed = s.hedgeDelay(st)
	}
	if !armed {
		det, err := run(ctx)
		return det, false, err
	}
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()
	type result struct {
		det    *mvpears.Detection
		remote bool
		err    error
		// Hedge-leg trace stitch inputs: the dispatch time and the peer's
		// returned spans.
		start time.Time
		spans []obs.Span
	}
	results := make(chan result, 2) // buffered: the loser must never block
	go func() {
		det, err := run(hctx)
		results <- result{det: det, err: err}
	}()
	tc := obs.TraceFrom(ctx).Context(obs.StageClusterForward)
	timer := time.AfterFunc(delay, func() {
		s.clusterHedges.Inc()
		start := time.Now()
		det, _, spans, err := s.node.Detect(hctx, addr, key, fwd.rate, fwd.data, tc)
		results <- result{det: det, remote: true, err: err, start: start, spans: spans}
	})
	defer timer.Stop()
	hedgeWin := func(r result) {
		s.clusterHedgeWins.Inc()
		trace := obs.TraceFrom(ctx)
		trace.Record(obs.StageClusterForward, "", r.start)
		trace.RecordRemote(addr, r.start, r.spans)
	}
	first := <-results
	if first.err == nil {
		hcancel() // cancel the loser promptly (deadline poisoning unblocks its RPC)
		if first.remote {
			hedgeWin(first)
		}
		return first.det, first.remote, nil
	}
	// The first finisher failed. If the other leg is (or may be) running,
	// give it the chance to answer before failing the request.
	if first.remote || !timer.Stop() {
		second := <-results
		if second.err == nil {
			if second.remote {
				hedgeWin(second)
			}
			return second.det, second.remote, nil
		}
		if !second.remote {
			// Both legs failed: the local error drives the HTTP mapping
			// (queue-full, deadline), never a hedge transport error.
			return nil, false, second.err
		}
	}
	return nil, false, first.err
}
