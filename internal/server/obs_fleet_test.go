package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"mvpears"
	"mvpears/internal/obs"
	"mvpears/internal/obs/drift"
)

// metricValue extracts the value of the first exposition line starting
// with prefix (family name or family{labels}).
func metricValue(t *testing.T, metrics, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(metrics, "\n") {
		if rest, ok := strings.CutPrefix(line, prefix); ok && strings.HasPrefix(rest, " ") {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("unparseable metric line %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metrics missing %q", prefix)
	return 0
}

func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestFleetIdentityAndSLOMetricsExposed pins the exposition shape of the
// fleet-observability families on a fresh server: identity gauges, SLO
// burn rates for all three built-in objectives, pre-created rejection
// reasons, and the drift/probe/audit plumbing.
func TestFleetIdentityAndSLOMetricsExposed(t *testing.T) {
	_, ts := newTestServer(t, Config{Backend: instantStub()})
	postWAV(t, ts.URL, wavBody(t, 8000, 256))
	metrics := scrape(t, ts.URL)

	mustContain(t, metrics,
		"mvpears_build_info{",
		"mvpears_model_info{",
		"mvpears_probe_suspicion 0",
		"mvpears_audit_dropped_total 0",
	)
	for _, reason := range []string{rejectQueueFull, rejectStreamSessions, rejectPeerBusy} {
		mustContain(t, metrics, `mvpears_rejected_total{reason="`+reason+`"} 0`)
	}
	for _, slo := range []string{"detect_latency", "availability", "verdict_quality"} {
		for _, window := range []string{"fast", "slow"} {
			mustContain(t, metrics,
				`mvpears_slo_burn_rate{slo="`+slo+`",window="`+window+`"}`)
		}
		mustContain(t, metrics,
			`mvpears_slo_objective{slo="`+slo+`"}`,
			`mvpears_slo_alerting{slo="`+slo+`"} 0`)
	}
	// One healthy detect against the defaults: no burn on availability.
	if v := metricValue(t, metrics, `mvpears_slo_burn_rate{slo="availability",window="fast"}`); v != 0 {
		t.Errorf("availability fast burn = %v after one 200, want 0", v)
	}
}

// TestRejectedTotalQueueFull saturates a one-worker, one-slot server and
// asserts the unified rejection counter attributes the 429 to the worker
// queue.
func TestRejectedTotalQueueFull(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{}, 8)
	stub := instantStub()
	inner := stub.detect
	stub.detect = func(ctx context.Context, clip *mvpears.Clip) (*mvpears.Detection, error) {
		entered <- struct{}{}
		<-block
		return inner(ctx, clip)
	}
	s, ts := newTestServer(t, Config{Backend: stub, Workers: 1, QueueDepth: 1})
	defer close(block)
	body := wavBody(t, 8000, 256)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/detect", "audio/wav", bytes.NewReader(body))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	<-entered
	waitFor(t, func() bool { return s.pool.QueueLen() == 1 })

	resp := postWAV(t, ts.URL, body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	io.Copy(io.Discard, resp.Body)
	metrics := scrape(t, ts.URL)
	if v := metricValue(t, metrics, `mvpears_rejected_total{reason="queue_full"}`); v != 1 {
		t.Errorf("queue_full rejections = %v, want 1", v)
	}
	if v := metricValue(t, metrics, `mvpears_rejected_total{reason="stream_sessions"}`); v != 0 {
		t.Errorf("stream_sessions rejections = %v, want 0", v)
	}
}

// driftStub is a scriptable backend that also carries a calibration-time
// drift reference, like a trained *mvpears.System does.
type driftStub struct {
	*stubBackend
	ref *drift.Reference
}

func (b *driftStub) DriftReference() *drift.Reference { return b.ref }

// TestDriftMonitorEndToEnd is the drift acceptance scenario: a backend
// whose calibration reference matches its live benign score distribution
// stays under the drift threshold through a benign replay, then an
// injected shifted score distribution drives mvpears_drift_score over
// the threshold and emits a structured drift event into the audit
// stream.
func TestDriftMonitorEndToEnd(t *testing.T) {
	// Deterministic benign scores near 1 (same generator for reference
	// and live traffic, different seeds).
	gen := func(seed uint64, n int, lo, span float64) []float64 {
		out := make([]float64, n)
		x := seed
		for i := range out {
			x = x*6364136223846793005 + 1442695040888963407
			out[i] = lo + span*float64(x>>40)/float64(1<<24)
		}
		return out
	}
	benignDS1 := gen(1, 512, 0.85, 0.15)
	benignGCS := gen(2, 512, 0.85, 0.15)

	ref := &drift.Reference{Version: 1}
	ref.AddDist("engine:DS1", benignDS1)
	ref.AddDist("engine:GCS", benignGCS)
	mins := make([]float64, 512)
	for i := range mins {
		mins[i] = min(benignDS1[i], benignGCS[i])
	}
	ref.AddDist("min_score", mins)
	ref.AddRate("adversarial_rate", 0)

	// The scripted backend serves scores from a swappable generator.
	var (
		reqN    int
		shifted bool
	)
	stub := instantStub()
	stub.detect = func(context.Context, *mvpears.Clip) (*mvpears.Detection, error) {
		det := benignDetection()
		seed := uint64(100 + reqN)
		reqN++
		if shifted {
			det.Scores = []float64{gen(seed, 1, 0.3, 0.2)[0], gen(seed+1, 1, 0.3, 0.2)[0]}
		} else {
			det.Scores = []float64{gen(seed, 1, 0.85, 0.15)[0], gen(seed+1, 1, 0.85, 0.15)[0]}
		}
		return det, nil
	}

	auditPath := filepath.Join(t.TempDir(), "audit.jsonl")
	sink, err := obs.OpenAuditSink(auditPath)
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	_, ts := newTestServer(t, Config{
		Backend:  &driftStub{stubBackend: stub, ref: ref},
		CacheOff: true, // every request must reach the detector and be observed
		Audit:    sink,
		Drift:    drift.Config{WindowN: 64, MinSamples: 32, EvalEvery: 8, Threshold: 0.25},
	})

	post := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			// Vary the body so no two uploads share a content key.
			resp := postWAV(t, ts.URL, wavBody(t, 8000, 256+i%7))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("detect status %d", resp.StatusCode)
			}
			io.Copy(io.Discard, resp.Body)
		}
	}

	// Benign replay: live scores match the calibration reference.
	post(48)
	metrics := scrape(t, ts.URL)
	for _, fam := range []string{"engine:DS1", "engine:GCS", "min_score"} {
		if v := metricValue(t, metrics, `mvpears_drift_score{family="`+fam+`"}`); v >= 0.25 {
			t.Errorf("benign replay drift_score{%s} = %v, want under 0.25", fam, v)
		}
	}
	if raw, _ := os.ReadFile(auditPath); strings.Contains(string(raw), `"drift"`) {
		t.Fatalf("benign replay emitted a drift audit event:\n%s", raw)
	}

	// Injected shift: scores collapse to [0.3, 0.5) — the transferable-AE
	// signature the monitor exists to catch.
	shifted = true
	post(96)
	metrics = scrape(t, ts.URL)
	for _, fam := range []string{"engine:DS1", "engine:GCS"} {
		if v := metricValue(t, metrics, `mvpears_drift_score{family="`+fam+`"}`); v <= 0.25 {
			t.Errorf("shifted drift_score{%s} = %v, want over 0.25", fam, v)
		}
	}

	raw, err := os.ReadFile(auditPath)
	if err != nil {
		t.Fatal(err)
	}
	var events []obs.DriftEvent
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var ev obs.DriftEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad audit line %q: %v", line, err)
		}
		if ev.Event == "drift" {
			events = append(events, ev)
		}
	}
	if len(events) == 0 {
		t.Fatal("shifted distribution emitted no drift audit event")
	}
	for _, ev := range events {
		if ev.Score <= ev.Threshold || ev.Samples == 0 || !strings.Contains(ev.Family+" ", ":") && ev.Family != "min_score" {
			t.Errorf("malformed drift event %+v", ev)
		}
	}
	// Quality SLO sees the drifted verdicts as bad events.
	if v := metricValue(t, metrics, `mvpears_slo_burn_rate{slo="verdict_quality",window="fast"}`); v == 0 {
		t.Error("verdict_quality burn rate stayed 0 through a drift episode")
	}
}

// TestStatuszPage renders the operator status page and checks each
// section: build/model identity, SLO burn state, and drift verdicts.
func TestStatuszPage(t *testing.T) {
	s, err := New(Config{Backend: instantStub(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.AdminHandler())
	defer ts.Close()

	// Put one request through the front handler so SLO sources are warm.
	front := httptest.NewServer(s.Handler())
	defer front.Close()
	postWAV(t, front.URL, wavBody(t, 8000, 256))

	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/statusz status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/statusz Content-Type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	page := string(raw)
	for _, want := range []string{
		"build:",
		"go=" + runtime.Version(),
		"model:",
		"detect_latency",
		"availability",
		"verdict_quality",
		"probe: suspicion=",
		"cluster",
		"disabled", // no cluster configured
	} {
		if !strings.Contains(page, want) {
			t.Errorf("/statusz missing %q:\n%s", want, page)
		}
	}
	// instantStub carries no drift reference: families observed so far
	// must render as unreferenced, never as drifted.
	if strings.Contains(page, "DRIFTED") {
		t.Errorf("/statusz reports drift on a fresh server:\n%s", page)
	}
	if strings.Contains(page, "ALERTING") {
		t.Errorf("/statusz reports SLO alerts on a fresh server:\n%s", page)
	}
}
