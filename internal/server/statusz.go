package server

import (
	"fmt"
	"net/http"
	"runtime"
	"time"
)

// handleStatusz renders a human-readable one-page fleet status on the
// admin listener: what is running (build, model), who it is serving with
// (ring membership, per-peer health), whether its detection quality is
// where calibration put it (drift verdicts, probe suspicion), and how
// the error budgets are burning (SLO state). Plain text on purpose —
// this is the page an operator reads over a terminal during an incident;
// the machine-readable faces are /metrics and /infoz.
func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	now := time.Now()
	st := s.state()

	fmt.Fprintf(w, "mvpearsd status\n===============\n\n")
	fmt.Fprintf(w, "build:    version=%s go=%s\n", s.buildVersion, runtime.Version())
	fp := st.modelFP
	if fp == "" {
		fp = "(cache off: unfingerprinted)"
	}
	fmt.Fprintf(w, "model:    fingerprint=%.16s reloads=%d\n", fp, s.reloadCount.Load())
	fmt.Fprintf(w, "uptime:   %s  draining=%v\n", now.Sub(s.start).Round(time.Second), s.draining.Load())

	fmt.Fprintf(w, "\ncluster\n-------\n")
	if s.node == nil {
		fmt.Fprintf(w, "disabled\n")
	} else {
		fmt.Fprintf(w, "self: %s\nring: %v\n", s.node.Self(), s.node.Members())
		for _, p := range s.node.PeerStatuses() {
			state := "healthy"
			if p.Down {
				state = "down (backoff)"
			}
			fmt.Fprintf(w, "peer: %-24s %s\n", p.Addr, state)
		}
	}

	fmt.Fprintf(w, "\ndetection quality\n-----------------\n")
	for _, v := range s.driftMon.Evaluate() {
		state := "ok"
		switch {
		case v.Drifted:
			state = "DRIFTED"
		case !v.HasRef:
			state = "no reference"
		}
		fmt.Fprintf(w, "drift: %-24s %-5s score=%.3f threshold=%.3f samples=%-6d %s\n",
			v.Family, v.Kind, v.Score, v.Threshold, v.Samples, state)
	}
	fmt.Fprintf(w, "probe: suspicion=%.3f near_duplicates=%d\n",
		s.probe.Suspicion(), s.probe.NearDuplicates())

	fmt.Fprintf(w, "\nslo\n---\n")
	for _, o := range s.sloEng.Status(now) {
		state := "ok"
		if o.Alerting {
			state = "ALERTING"
		}
		fmt.Fprintf(w, "slo: %-18s target=%.4f burn_fast=%.2f burn_slow=%.2f %s\n",
			o.Name, o.Target, o.FastBurn, o.SlowBurn, state)
	}
	fmt.Fprintf(w, "(alert when both windows burn > %.1f)\n", s.sloEng.AlertBurn())
}
