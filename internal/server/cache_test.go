package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"mime/multipart"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"mvpears"
	"mvpears/internal/vcache"
)

// fpStub gives a stubBackend a model fingerprint, enabling the verdict
// cache (plain stubBackend leaves it disabled, keeping the other handler
// tests cache-free).
type fpStub struct {
	*stubBackend
	fp string
}

func (b *fpStub) ModelFingerprint() (string, error) { return b.fp, nil }

// countingStub returns an instant benign stub whose detect invocations
// are counted.
func countingStub() (*stubBackend, *atomic.Int64) {
	var calls atomic.Int64
	b := instantStub()
	b.detect = func(context.Context, *mvpears.Clip) (*mvpears.Detection, error) {
		calls.Add(1)
		return benignDetection(), nil
	}
	return b, &calls
}

func metricsBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestDetectCacheHitSkipsBackend(t *testing.T) {
	stub, calls := countingStub()
	s, ts := newTestServer(t, Config{Backend: &fpStub{stub, "model-a"}})
	if s.vc == nil {
		t.Fatal("fingerprinted backend did not enable the verdict cache")
	}
	body := wavBody(t, 8000, 256)

	first := decodeBody[DetectionJSON](t, postWAV(t, ts.URL, body))
	if first.Cached {
		t.Fatal("first request served from an empty cache")
	}
	second := decodeBody[DetectionJSON](t, postWAV(t, ts.URL, body))
	if !second.Cached {
		t.Fatal("identical re-upload was not served from the cache")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("backend ran %d detections, want 1", got)
	}
	if second.Verdict != first.Verdict || len(second.Scores) != len(first.Scores) {
		t.Fatalf("cached verdict diverged: %+v vs %+v", second, first)
	}

	metrics := metricsBody(t, ts.URL)
	for _, want := range []string{
		"mvpears_cache_hits_total 1",
		"mvpears_cache_misses_total 1",
		"mvpears_cache_entries 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestDetectDuplicateStormRunsOneDetection is the singleflight acceptance
// check: a 16-way storm of identical uploads performs exactly one backend
// detection; the other fifteen share the leader's flight.
func TestDetectDuplicateStormRunsOneDetection(t *testing.T) {
	const storm = 16
	release := make(chan struct{})
	var calls atomic.Int64
	stub := instantStub()
	stub.detect = func(ctx context.Context, _ *mvpears.Clip) (*mvpears.Detection, error) {
		calls.Add(1)
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return benignDetection(), nil
	}
	s, ts := newTestServer(t, Config{Backend: &fpStub{stub, "model-a"}, Workers: 4})
	body := wavBody(t, 8000, 256)

	type result struct {
		code   int
		cached bool
		err    error
	}
	results := make(chan result, storm)
	var wg sync.WaitGroup
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/detect", "audio/wav", bytes.NewReader(body))
			if err != nil {
				results <- result{err: err}
				return
			}
			defer resp.Body.Close()
			var det DetectionJSON
			err = json.NewDecoder(resp.Body).Decode(&det)
			results <- result{code: resp.StatusCode, cached: det.Cached, err: err}
		}()
	}
	// Every non-leader must have joined the leader's flight before the
	// detection is allowed to finish — that is the collapse itself.
	waitFor(t, func() bool { return s.flight.Collapsed() >= storm-1 })
	close(release)
	wg.Wait()
	close(results)

	var cachedCount int
	for r := range results {
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.code != http.StatusOK {
			t.Fatalf("status %d, want 200", r.code)
		}
		if r.cached {
			cachedCount++
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("storm of %d ran %d detections, want exactly 1", storm, got)
	}
	if cachedCount != storm-1 {
		t.Fatalf("%d responses marked cached, want %d flight-shared", cachedCount, storm-1)
	}
	if !strings.Contains(metricsBody(t, ts.URL), fmt.Sprintf("mvpears_singleflight_collapsed_total %d", storm-1)) {
		t.Error("metrics missing the singleflight collapse count")
	}
}

func TestBatchServesFromCache(t *testing.T) {
	stub, calls := countingStub()
	_, ts := newTestServer(t, Config{Backend: &fpStub{stub, "model-a"}})
	primed := wavBody(t, 8000, 256)
	fresh := wavBody(t, 8000, 512)
	postWAV(t, ts.URL, primed) // populate the cache (1 detection)

	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for name, body := range map[string][]byte{"primed.wav": primed, "fresh.wav": fresh} {
		fw, err := mw.CreateFormFile("file", name)
		if err != nil {
			t.Fatal(err)
		}
		fw.Write(body)
	}
	mw.Close()
	resp, err := http.Post(ts.URL+"/v1/detect/batch", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	batch := decodeBody[BatchResponseJSON](t, resp)
	if len(batch.Results) != 2 {
		t.Fatalf("results %d", len(batch.Results))
	}
	for _, res := range batch.Results {
		switch res.File {
		case "primed.wav":
			if !res.Cached {
				t.Error("primed part was not served from the cache")
			}
		case "fresh.wav":
			if res.Cached {
				t.Error("unseen part claims to be cached")
			}
		default:
			t.Errorf("unexpected file %q", res.File)
		}
	}
	// One detection primed the cache, one served the batch's only miss.
	if got := calls.Load(); got != 2 {
		t.Fatalf("backend ran %d detections, want 2", got)
	}
}

// TestCacheIsModelScoped shares one cache between two servers fronting
// different models: the key's fingerprint prefix must keep their verdicts
// apart.
func TestCacheIsModelScoped(t *testing.T) {
	shared := vcache.New[*mvpears.Detection](64, 1<<20)
	stubA, callsA := countingStub()
	stubB, callsB := countingStub()
	_, tsA := newTestServer(t, Config{Backend: &fpStub{stubA, "model-a"}, Cache: shared})
	_, tsB := newTestServer(t, Config{Backend: &fpStub{stubB, "model-b"}, Cache: shared})
	body := wavBody(t, 8000, 256)

	postWAV(t, tsA.URL, body)
	if det := decodeBody[DetectionJSON](t, postWAV(t, tsB.URL, body)); det.Cached {
		t.Fatal("model B served model A's cached verdict")
	}
	if got := callsB.Load(); got != 1 {
		t.Fatalf("model B ran %d detections, want 1", got)
	}
	// Same model, same bytes: still a hit through the shared cache.
	if det := decodeBody[DetectionJSON](t, postWAV(t, tsA.URL, body)); !det.Cached {
		t.Fatal("model A re-upload missed its own cached verdict")
	}
	if got := callsA.Load(); got != 1 {
		t.Fatalf("model A ran %d detections, want 1", got)
	}
}

func TestDetectErrorsAreNotCached(t *testing.T) {
	var calls atomic.Int64
	stub := instantStub()
	stub.detect = func(context.Context, *mvpears.Clip) (*mvpears.Detection, error) {
		if calls.Add(1) == 1 {
			return nil, errors.New("engine exploded")
		}
		return benignDetection(), nil
	}
	_, ts := newTestServer(t, Config{
		Backend: &fpStub{stub, "model-a"},
		Logger:  log.New(io.Discard, "", 0),
	})
	body := wavBody(t, 8000, 256)

	if resp := postWAV(t, ts.URL, body); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	det := decodeBody[DetectionJSON](t, postWAV(t, ts.URL, body))
	if det.Cached {
		t.Fatal("failed detection was cached")
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("backend ran %d detections, want a retry after the failure", got)
	}
}

func TestCacheOffDisablesCollapsing(t *testing.T) {
	stub, calls := countingStub()
	s, ts := newTestServer(t, Config{Backend: &fpStub{stub, "model-a"}, CacheOff: true})
	if s.vc != nil || s.flight != nil {
		t.Fatal("CacheOff left the cache or singleflight enabled")
	}
	body := wavBody(t, 8000, 256)
	for i := 0; i < 2; i++ {
		if det := decodeBody[DetectionJSON](t, postWAV(t, ts.URL, body)); det.Cached {
			t.Fatal("cache-off server marked a verdict cached")
		}
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("backend ran %d detections, want 2", got)
	}
}
