package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mvpears"
	"mvpears/internal/audio"
)

// stubBackend lets handler tests script detection behavior (blocking,
// panics, fixed verdicts) without training real engines.
type stubBackend struct {
	rate   int
	aux    []string
	detect func(ctx context.Context, clip *mvpears.Clip) (*mvpears.Detection, error)
}

func (b *stubBackend) DetectCtx(ctx context.Context, clip *mvpears.Clip) (*mvpears.Detection, error) {
	return b.detect(ctx, clip)
}

func (b *stubBackend) DetectBatchCtx(ctx context.Context, clips []*mvpears.Clip) ([]*mvpears.Detection, error) {
	out := make([]*mvpears.Detection, len(clips))
	for i, clip := range clips {
		det, err := b.detect(ctx, clip)
		if err != nil {
			return nil, err
		}
		out[i] = det
	}
	return out, nil
}

func (b *stubBackend) SampleRate() int          { return b.rate }
func (b *stubBackend) AuxiliaryNames() []string { return b.aux }

// benignDetection fabricates a plausible benign verdict.
func benignDetection() *mvpears.Detection {
	return &mvpears.Detection{
		Adversarial:    false,
		Scores:         []float64{0.97, 0.95},
		Transcriptions: map[string]string{"DS0": "open the door", "DS1": "open the door", "GCS": "open the door"},
		Timing: mvpears.DetectionTiming{
			Recognition: 4 * time.Millisecond,
			Similarity:  20 * time.Microsecond,
			Classify:    2 * time.Microsecond,
		},
	}
}

func instantStub() *stubBackend {
	return &stubBackend{
		rate: 8000,
		aux:  []string{"DS1", "GCS"},
		detect: func(context.Context, *mvpears.Clip) (*mvpears.Detection, error) {
			return benignDetection(), nil
		},
	}
}

// newTestServer builds a Server + httptest front end around the backend.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// wavBody renders a small WAV at the given rate.
func wavBody(t testing.TB, rate, n int) []byte {
	t.Helper()
	c := audio.NewClip(rate, n)
	for i := range c.Samples {
		c.Samples[i] = float64(i%64)/64 - 0.5
	}
	var buf bytes.Buffer
	if err := audio.WriteWAV(&buf, c); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postWAV(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/detect", "audio/wav", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestDetectHappyPath(t *testing.T) {
	_, ts := newTestServer(t, Config{Backend: instantStub()})
	resp := postWAV(t, ts.URL, wavBody(t, 8000, 256))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	det := decodeBody[DetectionJSON](t, resp)
	if det.Verdict != VerdictBenign || det.Adversarial {
		t.Fatalf("verdict %+v", det)
	}
	if len(det.Scores) != 2 || det.Scores[0] != 0.97 {
		t.Fatalf("scores %v", det.Scores)
	}
	if det.Transcriptions["DS0"] != "open the door" {
		t.Fatalf("transcriptions %v", det.Transcriptions)
	}
	if det.Timing.RecognitionMS != 4 {
		t.Fatalf("timing %+v", det.Timing)
	}
	if len(det.Auxiliaries) != 2 {
		t.Fatalf("auxiliaries %v", det.Auxiliaries)
	}
}

func TestDetectResamplesUploads(t *testing.T) {
	stub := instantStub()
	var gotRate int
	inner := stub.detect
	stub.detect = func(ctx context.Context, clip *mvpears.Clip) (*mvpears.Detection, error) {
		gotRate = clip.SampleRate
		return inner(ctx, clip)
	}
	_, ts := newTestServer(t, Config{Backend: stub})
	resp := postWAV(t, ts.URL, wavBody(t, 16000, 512))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if gotRate != 8000 {
		t.Fatalf("backend saw %d Hz, want resampled 8000", gotRate)
	}
}

func TestDetectRejectsBadInput(t *testing.T) {
	_, ts := newTestServer(t, Config{Backend: instantStub(), MaxUploadBytes: 1024})
	cases := []struct {
		name string
		body []byte
		want int
	}{
		{"garbage", []byte("definitely not audio"), http.StatusBadRequest},
		{"empty", nil, http.StatusBadRequest},
		{"truncated", wavBody(t, 8000, 256)[:50], http.StatusBadRequest},
		{"oversized", wavBody(t, 8000, 4096), http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postWAV(t, ts.URL, tc.body)
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.want)
			}
			e := decodeBody[ErrorJSON](t, resp)
			if e.Error == "" {
				t.Fatal("error body missing")
			}
		})
	}
	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/detect")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d, want 405", resp.StatusCode)
	}
}

func TestDetectBackendError(t *testing.T) {
	stub := instantStub()
	stub.detect = func(context.Context, *mvpears.Clip) (*mvpears.Detection, error) {
		return nil, fmt.Errorf("engine exploded")
	}
	_, ts := newTestServer(t, Config{Backend: stub})
	resp := postWAV(t, ts.URL, wavBody(t, 8000, 256))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
}

func TestDetectPanicRecovery(t *testing.T) {
	stub := instantStub()
	stub.detect = func(context.Context, *mvpears.Clip) (*mvpears.Detection, error) {
		panic("handler bug")
	}
	s, ts := newTestServer(t, Config{Backend: stub})
	resp := postWAV(t, ts.URL, wavBody(t, 8000, 256))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	if s.panicsTotal.Value() != 1 {
		t.Fatalf("panic counter %d", s.panicsTotal.Value())
	}
	// The server must still answer after a panic.
	if resp := postWAV(t, ts.URL, wavBody(t, 8000, 256)); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("second request status %d", resp.StatusCode)
	}
}

// TestQueueSaturationYields429 is the overload acceptance check: with one
// worker and a one-slot queue, the third concurrent request must bounce
// with 429 + Retry-After instead of growing goroutines.
func TestQueueSaturationYields429(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{}, 8)
	stub := instantStub()
	inner := stub.detect
	stub.detect = func(ctx context.Context, clip *mvpears.Clip) (*mvpears.Detection, error) {
		entered <- struct{}{}
		<-block
		return inner(ctx, clip)
	}
	s, ts := newTestServer(t, Config{Backend: stub, Workers: 1, QueueDepth: 1})
	body := wavBody(t, 8000, 256)

	results := make(chan int, 2)
	post := func() {
		resp, err := http.Post(ts.URL+"/v1/detect", "audio/wav", bytes.NewReader(body))
		if err != nil {
			t.Error(err)
			results <- 0
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		results <- resp.StatusCode
	}
	go post() // occupies the worker
	<-entered
	go post() // occupies the queue slot
	waitFor(t, func() bool { return s.pool.QueueLen() == 1 })

	resp := postWAV(t, ts.URL, body) // overload
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if s.queueRejected.Value() != 1 {
		t.Fatalf("rejected counter %d", s.queueRejected.Value())
	}

	close(block)
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Fatalf("in-flight request finished with %d", code)
		}
	}
}

func TestRequestDeadlineYields504(t *testing.T) {
	stub := instantStub()
	stub.detect = func(ctx context.Context, clip *mvpears.Clip) (*mvpears.Detection, error) {
		<-ctx.Done() // a well-behaved backend returns when cancelled
		return nil, ctx.Err()
	}
	_, ts := newTestServer(t, Config{Backend: stub, RequestTimeout: 30 * time.Millisecond})
	resp := postWAV(t, ts.URL, wavBody(t, 8000, 256))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
}

func TestBatchDetect(t *testing.T) {
	_, ts := newTestServer(t, Config{Backend: instantStub()})
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for _, name := range []string{"a.wav", "b.wav"} {
		fw, err := mw.CreateFormFile("file", name)
		if err != nil {
			t.Fatal(err)
		}
		fw.Write(wavBody(t, 8000, 256))
	}
	mw.Close()
	resp, err := http.Post(ts.URL+"/v1/detect/batch", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	batch := decodeBody[BatchResponseJSON](t, resp)
	if len(batch.Results) != 2 {
		t.Fatalf("results %d", len(batch.Results))
	}
	if batch.Results[0].File != "a.wav" || batch.Results[1].File != "b.wav" {
		t.Fatalf("file names %q %q", batch.Results[0].File, batch.Results[1].File)
	}
	if batch.Results[0].Verdict != VerdictBenign {
		t.Fatalf("verdict %q", batch.Results[0].Verdict)
	}
}

func TestBatchRejectsTooManyFiles(t *testing.T) {
	_, ts := newTestServer(t, Config{Backend: instantStub(), MaxBatchFiles: 2})
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for i := 0; i < 3; i++ {
		fw, _ := mw.CreateFormFile("file", fmt.Sprintf("%d.wav", i))
		fw.Write(wavBody(t, 8000, 64))
	}
	mw.Close()
	resp, err := http.Post(ts.URL+"/v1/detect/batch", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

func TestBatchRejectsEmptyAndNonMultipart(t *testing.T) {
	_, ts := newTestServer(t, Config{Backend: instantStub()})
	resp, err := http.Post(ts.URL+"/v1/detect/batch", "audio/wav", bytes.NewReader(wavBody(t, 8000, 64)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-multipart status %d, want 400", resp.StatusCode)
	}
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	mw.Close()
	resp, err = http.Post(ts.URL+"/v1/detect/batch", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch status %d, want 400", resp.StatusCode)
	}
}

func TestHealthAndReadiness(t *testing.T) {
	s, ts := newTestServer(t, Config{Backend: instantStub()})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d", path, resp.StatusCode)
		}
	}
	// Draining flips readiness (but not liveness).
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz status %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draining healthz status %d, want 200", resp.StatusCode)
	}
	// And new detection work is refused.
	resp = postWAV(t, ts.URL, wavBody(t, 8000, 64))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain detect status %d, want 503", resp.StatusCode)
	}
}

// TestShutdownDrainsInFlight asserts graceful drain: a request already
// running when Shutdown starts must complete with 200.
func TestShutdownDrainsInFlight(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{}, 1)
	stub := instantStub()
	inner := stub.detect
	stub.detect = func(ctx context.Context, clip *mvpears.Clip) (*mvpears.Detection, error) {
		entered <- struct{}{}
		<-block
		return inner(ctx, clip)
	}
	s, ts := newTestServer(t, Config{Backend: stub, Workers: 1})
	result := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/detect", "audio/wav", bytes.NewReader(wavBody(t, 8000, 256)))
		if err != nil {
			t.Error(err)
			result <- 0
			return
		}
		defer resp.Body.Close()
		result <- resp.StatusCode
	}()
	<-entered
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	// Shutdown must wait for the in-flight job, not kill it.
	select {
	case <-shutdownDone:
		t.Fatal("Shutdown returned while a job was in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(block)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if code := <-result; code != http.StatusOK {
		t.Fatalf("in-flight request finished with %d, want 200", code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Backend: instantStub()})
	postWAV(t, ts.URL, wavBody(t, 8000, 256))
	postWAV(t, ts.URL, []byte("garbage"))
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	for _, want := range []string{
		`mvpears_requests_total{route="detect",code="200"} 1`,
		`mvpears_requests_total{route="detect",code="400"} 1`,
		`mvpears_detections_total{verdict="benign"} 1`,
		"mvpears_request_duration_seconds_bucket",
		`mvpears_detect_stage_seconds_count{stage="recognition"} 1`,
		"mvpears_in_flight_requests",
		"mvpears_queue_depth 0",
		"mvpears_queue_rejected_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}
