package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"mvpears"
	"mvpears/internal/audio"
	"mvpears/internal/stream"
)

// streamE2EServer boots a streaming-enabled server over real TCP and
// returns its base URL. Window/hop are shrunk below the defaults so the
// short quick-scale fixtures span several windows.
func streamE2EServer(t *testing.T, sys *mvpears.System) string {
	t.Helper()
	s, err := New(Config{
		Backend: sys,
		Workers: 2,
		Stream: &StreamConfig{
			Window: 4000, // 500 ms at the 8 kHz quick scale
			Hop:    1000, // 125 ms
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); _ = s.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		<-serveDone
	})
	return "http://" + ln.Addr().String()
}

// streamNDJSON POSTs wav to /v1/detect/stream in chunkSize-byte pieces
// over a chunked-transfer body and decodes every NDJSON event.
func streamNDJSON(t *testing.T, base string, wav []byte, chunkSize int) []StreamEventJSON {
	t.Helper()
	pr, pw := io.Pipe()
	go func() {
		for off := 0; off < len(wav); off += chunkSize {
			end := min(off+chunkSize, len(wav))
			if _, err := pw.Write(wav[off:end]); err != nil {
				return
			}
		}
		pw.Close()
	}()
	resp, err := http.Post(base+"/v1/detect/stream", "audio/wav", pr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream status %d: %s", resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q, want application/x-ndjson", ct)
	}
	var events []StreamEventJSON
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		var ev StreamEventJSON
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

// splitStreamEvents separates window events from the trailing final.
func splitStreamEvents(t *testing.T, events []StreamEventJSON) (windows []StreamEventJSON, final StreamEventJSON) {
	t.Helper()
	if len(events) == 0 {
		t.Fatal("no stream events")
	}
	for _, ev := range events {
		if ev.Event == StreamEventError {
			t.Fatalf("stream error event: %s", ev.Error)
		}
	}
	final = events[len(events)-1]
	if final.Event != StreamEventFinal || final.Detection == nil {
		t.Fatalf("last event is %q (detection %v), want final", final.Event, final.Detection != nil)
	}
	for _, ev := range events[:len(events)-1] {
		if ev.Event != StreamEventWindow || ev.Window == nil {
			t.Fatalf("mid-stream event %q, want window", ev.Event)
		}
		windows = append(windows, ev)
	}
	return windows, final
}

// assertDetectionEqual requires the streamed final verdict to be
// bit-identical to the batch reference: same verdict, exact float64
// scores, same transcriptions.
func assertDetectionEqual(t *testing.T, name string, got *DetectionJSON, want *mvpears.Detection) {
	t.Helper()
	wantVerdict := VerdictBenign
	if want.Adversarial {
		wantVerdict = VerdictAdversarial
	}
	if got.Verdict != wantVerdict || got.Adversarial != want.Adversarial {
		t.Fatalf("%s: streamed verdict %s, batch %s", name, got.Verdict, wantVerdict)
	}
	if len(got.Scores) != len(want.Scores) {
		t.Fatalf("%s: score width %d vs %d", name, len(got.Scores), len(want.Scores))
	}
	for i := range got.Scores {
		if got.Scores[i] != want.Scores[i] {
			t.Fatalf("%s: score %d not bit-identical: %g vs %g", name, i, got.Scores[i], want.Scores[i])
		}
	}
	for engine, text := range want.Transcriptions {
		if got.Transcriptions[engine] != text {
			t.Fatalf("%s: %s transcribed %q, batch %q", name, engine, got.Transcriptions[engine], text)
		}
	}
}

// TestE2EStreamingDetection is the streaming acceptance scenario: boot a
// streaming daemon on real TCP, feed a benign clip and a crafted AE in
// small chunks, and require (a) provisional window verdicts along the
// way, (b) a final streamed verdict bit-identical to the batch System
// verdict on the whole clip, (c) the AE session flagged adversarial
// before end-of-stream with the time-to-flag logged, and (d) the
// streamed final populating the same content-addressed verdict cache the
// batch endpoint reads.
func TestE2EStreamingDetection(t *testing.T) {
	sys := e2eSystem(t)
	base := streamE2EServer(t, sys)

	benign, err := sys.GenerateSpeech("the door is open now please", 123)
	if err != nil {
		t.Fatal(err)
	}
	benignWAV := encodeWAV(t, benign)
	decoded, err := audio.ReadWAVLimited(bytes.NewReader(benignWAV), 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.Detect(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if want.Adversarial {
		t.Fatal("reference system called the benign fixture adversarial")
	}

	events := streamNDJSON(t, base, benignWAV, 1024)
	windows, final := splitStreamEvents(t, events)
	if len(windows) == 0 {
		t.Fatal("benign stream produced no provisional windows")
	}
	// Provisional window verdicts may transiently read adversarial at
	// phrase boundaries; what a benign session must never do is trip the
	// early-exit flag.
	for _, ev := range windows {
		if ev.Stop || ev.Window.EarlyExit {
			t.Fatalf("benign window tripped early exit: %+v", ev.Window)
		}
	}
	assertDetectionEqual(t, "benign", final.Detection, want)
	if final.Detection.Cached {
		t.Fatal("first streamed verdict claims to be cached")
	}
	if final.EarlyExit != nil {
		t.Fatalf("benign stream early-exited: %+v", final.EarlyExit)
	}

	// The streamed verdict is content-addressed identically to a batch
	// upload: the same WAV POSTed whole is now a cache hit.
	resp, err := http.Post(base+"/v1/detect", "audio/wav", bytes.NewReader(benignWAV))
	if err != nil {
		t.Fatal(err)
	}
	batch := decodeBody[DetectionJSON](t, resp)
	resp.Body.Close()
	if !batch.Cached {
		t.Fatal("batch re-upload of streamed content missed the verdict cache")
	}
	assertDetectionEqual(t, "benign cache hit", &batch, want)

	// The adversarial session: a white-box AE against the target engine.
	host, err := sys.GenerateSpeech("we keep the old book here", 323)
	if err != nil {
		t.Fatal(err)
	}
	ae, err := sys.CraftWhiteBoxAE(host, "open the front door")
	if err != nil {
		t.Fatal(err)
	}
	if !ae.Success {
		t.Skip("white-box attack failed at quick scale; early-exit leg skipped")
	}
	aeWAV := encodeWAV(t, ae.AE)
	aeClip, err := audio.ReadWAVLimited(bytes.NewReader(aeWAV), 0)
	if err != nil {
		t.Fatal(err)
	}
	wantAE, err := sys.Detect(aeClip)
	if err != nil {
		t.Fatal(err)
	}
	if !wantAE.Adversarial {
		t.Skip("quick-scale AE transferred to the auxiliaries; early-exit leg skipped")
	}

	aeEvents := streamNDJSON(t, base, aeWAV, 512)
	aeWindows, aeFinal := splitStreamEvents(t, aeEvents)
	assertDetectionEqual(t, "adversarial", aeFinal.Detection, wantAE)

	if aeFinal.EarlyExit == nil {
		t.Fatal("adversarial stream never early-exited")
	}
	last := aeWindows[len(aeWindows)-1]
	if !last.Stop || !last.Window.EarlyExit || last.Window.Verdict != VerdictAdversarial {
		t.Fatalf("flagging window not marked stop/early_exit/adversarial: %+v", last)
	}
	clipMS := float64(len(aeClip.Samples)) / float64(aeClip.SampleRate) * 1000
	if aeFinal.EarlyExit.AudioTimeMS >= clipMS {
		t.Fatalf("early exit at %.1f ms, not before end-of-stream (%.1f ms)",
			aeFinal.EarlyExit.AudioTimeMS, clipMS)
	}
	t.Logf("early exit: engine %s score %.4f under floor %.4f — time-to-flag %.1f ms of %.1f ms of audio (%.0f%% heard)",
		aeFinal.EarlyExit.Engine, aeFinal.EarlyExit.Score, aeFinal.EarlyExit.Floor,
		aeFinal.EarlyExit.AudioTimeMS, clipMS, 100*aeFinal.EarlyExit.AudioTimeMS/clipMS)

	// Streaming metrics accounted for both sessions.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	metrics := string(raw)
	for _, wantLine := range []string{
		"mvpears_stream_sessions_total 2",
		"mvpears_stream_early_exits_total 1",
		`mvpears_stream_windows_total{verdict="benign"}`,
		"mvpears_stream_window_seconds_count",
	} {
		if !strings.Contains(metrics, wantLine) {
			t.Fatalf("metrics missing %q", wantLine)
		}
	}
}

// TestE2EStreamingWebSocket drives the same benign fixture through the
// WebSocket endpoint: raw PCM16 frames in, the final verdict must again
// be bit-identical to the batch System verdict.
func TestE2EStreamingWebSocket(t *testing.T) {
	sys := e2eSystem(t)
	base := streamE2EServer(t, sys)

	benign, err := sys.GenerateSpeech("turn the lights off tonight", 456)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.Detect(benign)
	if err != nil {
		t.Fatal(err)
	}
	pcm := make([]byte, 2*len(benign.Samples))
	for i, s := range benign.Samples {
		v := int16(s * 32767)
		pcm[2*i] = byte(v)
		pcm[2*i+1] = byte(uint16(v) >> 8)
	}

	c, err := stream.DialWS("ws" + strings.TrimPrefix(base, "http") + "/v1/detect/ws")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Odd-sized frames force the handler's carry-byte path.
	const frame = 1001
	for off := 0; off < len(pcm); off += frame {
		end := min(off+frame, len(pcm))
		if err := c.WriteMessage(stream.OpBinary, pcm[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WriteMessage(stream.OpText, []byte("end")); err != nil {
		t.Fatal(err)
	}

	var events []StreamEventJSON
	for {
		op, payload, err := c.ReadMessage()
		if err != nil {
			break // server closes after the final event
		}
		if op != stream.OpText {
			t.Fatalf("unexpected frame opcode %d", op)
		}
		var ev StreamEventJSON
		if err := json.Unmarshal(payload, &ev); err != nil {
			t.Fatalf("bad event %q: %v", payload, err)
		}
		events = append(events, ev)
	}
	windows, final := splitStreamEvents(t, events)
	if len(windows) == 0 {
		t.Fatal("websocket stream produced no provisional windows")
	}
	assertDetectionEqual(t, "websocket benign", final.Detection, want)
}

// TestStreamSessionRejectionAndErrorRequestID covers the streaming legs
// of the unified observability contract: a full session table rejects
// with 429 AND accounts the rejection under
// mvpears_rejected_total{reason="stream_sessions"}, and a mid-stream
// failure's NDJSON error event echoes the client's X-Request-ID exactly
// like the batch error paths do.
func TestStreamSessionRejectionAndErrorRequestID(t *testing.T) {
	sys := e2eSystem(t)
	s, err := New(Config{
		Backend: sys,
		Workers: 2,
		Stream: &StreamConfig{
			Window:      4000,
			Hop:         1000,
			MaxSessions: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); _ = s.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		<-serveDone
	})
	base := "http://" + ln.Addr().String()

	// Hold the single session open over WebSocket…
	c, err := stream.DialWS("ws" + strings.TrimPrefix(base, "http") + "/v1/detect/ws")
	if err != nil {
		t.Fatal(err)
	}
	// …and reject the second opener with a counted 429.
	resp, err := http.Post(base+"/v1/detect/stream", "audio/wav", bytes.NewReader(wavBody(t, sys.SampleRate(), 256)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second session status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(raw), `mvpears_rejected_total{reason="stream_sessions"} 1`) {
		t.Error("metrics missing the stream_sessions rejection count")
	}
	c.Close() // free the session slot

	// A truncated WAV body fails mid-stream; the NDJSON error event must
	// carry the client's request ID (the 200 header is long gone, so the
	// event body is the only place it can live).
	clip, err := sys.GenerateSpeech("echo my id back", 99)
	if err != nil {
		t.Fatal(err)
	}
	wav := encodeWAV(t, clip)
	truncated := wav[:len(wav)-1000] // mid data chunk

	var events []StreamEventJSON
	deadline := time.Now().Add(5 * time.Second)
	for {
		req, err := http.NewRequest(http.MethodPost, base+"/v1/detect/stream", bytes.NewReader(truncated))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "audio/wav")
		req.Header.Set("X-Request-ID", "stream-err-1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests && time.Now().Before(deadline) {
			// The WS session above may still be tearing down.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			time.Sleep(10 * time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			t.Fatalf("truncated stream status %d: %s", resp.StatusCode, b)
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		for sc.Scan() {
			var ev StreamEventJSON
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
			}
			events = append(events, ev)
		}
		resp.Body.Close()
		break
	}
	if len(events) == 0 {
		t.Fatal("truncated stream produced no events")
	}
	last := events[len(events)-1]
	if last.Event != StreamEventError || last.Error == "" {
		t.Fatalf("last event = %+v, want an error event", last)
	}
	if last.RequestID != "stream-err-1" {
		t.Fatalf("error event request_id %q, want the client-supplied stream-err-1", last.RequestID)
	}
}
