package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"mvpears"
	"mvpears/internal/audio"
	"mvpears/internal/obs"
)

// TestHistogramObserveGuards pins the Observe input guard: NaN is dropped
// entirely (it would poison the sum forever) and negative values clamp to
// zero (they land in every bucket but cannot drag the sum below zero).
func TestHistogramObserveGuards(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "Latency.", []float64{1})
	h.Observe(math.NaN())
	if h.Count() != 0 {
		t.Fatalf("NaN was counted: count %d", h.Count())
	}
	h.Observe(-5)
	h.Observe(0.5)
	mustContain(t, render(t, r),
		`latency_seconds_bucket{le="1"} 2`,
		"latency_seconds_sum 0.5",
		"latency_seconds_count 2",
	)
	// Vec children share the same guard.
	v := r.HistogramVec("stage_seconds", "Stages.", []float64{1}, "stage")
	v.With("decode").Observe(math.NaN())
	v.With("decode").Observe(math.Inf(-1))
	mustContain(t, render(t, r), `stage_seconds_count{stage="decode"} 1`)
}

// TestVecConcurrentCreateAndRender hammers label-child creation from many
// goroutines while rendering concurrently; run under -race this pins the
// vec maps' locking.
func TestVecConcurrentCreateAndRender(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("requests_total", "Requests.", "route", "code")
	hv := r.HistogramVec("stage_seconds", "Stages.", []float64{0.1, 1}, "stage")
	stages := []string{"decode", "transcribe", "phonetic", "similarity", "classify"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				cv.With("detect", "200").Inc()
				cv.With("detect", "429").Inc()
				hv.With(stages[(g+i)%len(stages)]).Observe(float64(i) / 100)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := r.Render(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	out := render(t, r)
	mustContain(t, out, `requests_total{route="detect",code="200"} 1600`)
	for _, st := range stages {
		mustContain(t, out, `stage_seconds_count{stage="`+st+`"}`)
	}
}

// TestEngineLabelEscaping serves a backend whose auxiliary names contain
// quotes and backslashes and asserts the exposition escapes them; a raw
// engine name must never corrupt the metrics text format.
func TestEngineLabelEscaping(t *testing.T) {
	stub := instantStub()
	stub.aux = []string{`D"S1`, `GC\S`}
	_, ts := newTestServer(t, Config{Backend: stub})
	postWAV(t, ts.URL, wavBody(t, 8000, 256))
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	mustContain(t, string(raw),
		`mvpears_engine_similarity_count{engine="D\"S1"} 1`,
		`mvpears_engine_similarity_count{engine="GC\\S"} 1`,
	)
}

// TestRequestIDEcho pins the request-ID contract: a usable client ID is
// echoed back, a missing one is minted, and every status — 200, 400
// decode errors, 429 overload — carries the header and repeats it in the
// JSON error body.
func TestRequestIDEcho(t *testing.T) {
	_, ts := newTestServer(t, Config{Backend: instantStub()})

	// Client-supplied ID round-trips on success.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/detect", bytes.NewReader(wavBody(t, 8000, 256)))
	req.Header.Set("X-Request-ID", "client-abc-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "client-abc-123" {
		t.Fatalf("echoed ID %q, want client-supplied", got)
	}

	// An unusable ID (injection attempt) is replaced with a minted one.
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/detect", bytes.NewReader(wavBody(t, 8000, 256)))
	req.Header.Set("X-Request-ID", `bad"id`)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got == "" || got == `bad"id` {
		t.Fatalf("unusable client ID not replaced: %q", got)
	}

	// Error responses mint an ID and repeat it in the body.
	resp = postWAV(t, ts.URL, []byte("garbage"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
	hdrID := resp.Header.Get("X-Request-ID")
	if hdrID == "" {
		t.Fatal("400 without X-Request-ID header")
	}
	e := decodeBody[ErrorJSON](t, resp)
	if e.RequestID != hdrID {
		t.Fatalf("body request_id %q != header %q", e.RequestID, hdrID)
	}
}

// TestRequestIDOn429 saturates a one-worker, one-slot server and asserts
// the overload rejection still carries the request ID.
func TestRequestIDOn429(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{}, 8)
	stub := instantStub()
	inner := stub.detect
	stub.detect = func(ctx context.Context, clip *mvpears.Clip) (*mvpears.Detection, error) {
		entered <- struct{}{}
		<-block
		return inner(ctx, clip)
	}
	s, ts := newTestServer(t, Config{Backend: stub, Workers: 1, QueueDepth: 1})
	defer close(block)
	body := wavBody(t, 8000, 256)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/detect", "audio/wav", bytes.NewReader(body))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	<-entered
	waitFor(t, func() bool { return s.pool.QueueLen() == 1 })

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/detect", bytes.NewReader(body))
	req.Header.Set("X-Request-ID", "overload-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "overload-7" {
		t.Fatalf("429 echoed %q", got)
	}
	e := decodeBody[ErrorJSON](t, resp)
	if e.RequestID != "overload-7" {
		t.Fatalf("429 body request_id %q", e.RequestID)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing access logs.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestAccessLogRecord posts one request through a server with the access
// log enabled and asserts the JSON line carries the request ID, route,
// verdict, and per-stage timings.
func TestAccessLogRecord(t *testing.T) {
	var buf syncBuffer
	_, ts := newTestServer(t, Config{Backend: instantStub(), AccessLog: &buf})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/detect", bytes.NewReader(wavBody(t, 8000, 256)))
	req.Header.Set("X-Request-ID", "log-me-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// The log line is written by the middleware's defer, which can land
	// just after the client sees the response.
	waitFor(t, func() bool { return strings.Contains(buf.String(), "log-me-1") })
	var rec map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &rec); err != nil {
		t.Fatalf("access log is not one JSON line: %v\n%s", err, buf.String())
	}
	if rec["request_id"] != "log-me-1" || rec["route"] != "detect" || rec["status"] != float64(200) {
		t.Fatalf("log record %v", rec)
	}
	if rec["verdict"] != VerdictBenign {
		t.Fatalf("log verdict %v", rec["verdict"])
	}
	stages, ok := rec["stages"].(map[string]any)
	if !ok {
		t.Fatalf("log record missing stages group: %v", rec)
	}
	if _, ok := stages[obs.StageDecode+"_ms"]; !ok {
		t.Fatalf("stages missing decode: %v", stages)
	}
}

// TestAuditSinkRecordsAdversarial wires an audit sink into the server and
// asserts adversarial verdicts (and only those) are appended as JSONL.
func TestAuditSinkRecordsAdversarial(t *testing.T) {
	adversarial := false
	stub := instantStub()
	stub.detect = func(context.Context, *mvpears.Clip) (*mvpears.Detection, error) {
		det := benignDetection()
		det.Adversarial = adversarial
		if adversarial {
			det.Scores = []float64{0.2, 0.9}
		}
		return det, nil
	}
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	sink, err := obs.OpenAuditSink(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	_, ts := newTestServer(t, Config{Backend: stub, CacheOff: true, Audit: sink})

	postWAV(t, ts.URL, wavBody(t, 8000, 256)) // benign: not audited
	adversarial = true
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/detect", bytes.NewReader(wavBody(t, 8000, 512)))
	req.Header.Set("X-Request-ID", "audit-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 1 {
		t.Fatalf("audit lines %d, want 1 (benign must not be audited):\n%s", len(lines), raw)
	}
	var entry obs.AuditEntry
	if err := json.Unmarshal([]byte(lines[0]), &entry); err != nil {
		t.Fatal(err)
	}
	if entry.RequestID != "audit-1" || entry.Verdict != VerdictAdversarial {
		t.Fatalf("audit entry %+v", entry)
	}
	if entry.MinScore != 0.2 || entry.MinEngine != "DS1" {
		t.Fatalf("audit min %q=%v", entry.MinEngine, entry.MinScore)
	}
}

// TestAdminHandler exercises the operator endpoint set: /infoz identity,
// pprof index, metrics, and liveness.
func TestAdminHandler(t *testing.T) {
	s, err := New(Config{Backend: instantStub(), Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.AdminHandler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/infoz")
	if err != nil {
		t.Fatal(err)
	}
	info := decodeBody[InfoJSON](t, resp)
	resp.Body.Close()
	if info.SampleRate != 8000 || info.Workers != 3 || info.GoVersion == "" {
		t.Fatalf("infoz %+v", info)
	}
	if len(info.Auxiliaries) != 2 {
		t.Fatalf("infoz auxiliaries %v", info.Auxiliaries)
	}
	for _, path := range []string{"/debug/pprof/", "/metrics", "/healthz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d", path, resp.StatusCode)
		}
	}
}

// TestE2EExplainAndStageMetrics is the observability acceptance scenario
// on a real trained system: a traced ?explain=1 request returns the exact
// per-engine evidence the detector computed (bit-for-bit score equality),
// a repeat of the same upload is answered from the verdict cache with an
// identical after-the-fact explanation, and /metrics afterwards exposes
// the mvpears_stage_seconds family for all five pipeline stages plus
// mvpears_engine_seconds for every engine.
func TestE2EExplainAndStageMetrics(t *testing.T) {
	sys := e2eSystem(t)
	s, err := New(Config{Backend: sys, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	clip, err := sys.GenerateSpeech("the door is open", 123)
	if err != nil {
		t.Fatal(err)
	}
	wav := encodeWAV(t, clip)
	decoded, err := audio.ReadWAVLimited(bytes.NewReader(wav), 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.Detect(decoded)
	if err != nil {
		t.Fatal(err)
	}
	wantExp := sys.Explain(want)

	post := func() DetectionJSON {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/detect?explain=1", "audio/wav", bytes.NewReader(wav))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("status %d: %s", resp.StatusCode, b)
		}
		return decodeBody[DetectionJSON](t, resp)
	}
	checkExplanation := func(got DetectionJSON) {
		t.Helper()
		exp := got.Explanation
		if exp == nil {
			t.Fatal("?explain=1 response has no explanation")
		}
		if exp.Method != wantExp.Method {
			t.Fatalf("method %q, want %q", exp.Method, wantExp.Method)
		}
		aux := sys.AuxiliaryNames()
		if len(exp.Engines) != len(aux)+1 {
			t.Fatalf("explanation engines %d, want target+%d", len(exp.Engines), len(aux))
		}
		if exp.Engines[0].Phonetic != wantExp.Target.Phonetic || exp.Engines[0].Similarity != nil {
			t.Fatalf("target evidence %+v", exp.Engines[0])
		}
		for i, name := range aux {
			ev := exp.Engines[i+1]
			if ev.Engine != name {
				t.Fatalf("engine %d is %q, want %q", i, ev.Engine, name)
			}
			// Bit-for-bit: the explanation's score vector must be exactly
			// the detector's internal scores, not a recomputation.
			if ev.Similarity == nil || *ev.Similarity != want.Scores[i] {
				t.Fatalf("%s similarity %v, want exactly %v", name, ev.Similarity, want.Scores[i])
			}
			if ev.Phonetic != wantExp.Auxiliaries[i].Phonetic {
				t.Fatalf("%s phonetic %q, want %q", name, ev.Phonetic, wantExp.Auxiliaries[i].Phonetic)
			}
			if ev.Transcription != want.Transcriptions[name] {
				t.Fatalf("%s transcription %q, want %q", name, ev.Transcription, want.Transcriptions[name])
			}
		}
		if exp.MinSimilarity != wantExp.MinSimilarity || exp.MinEngine != wantExp.MinEngine {
			t.Fatalf("min %q=%v, want %q=%v", exp.MinEngine, exp.MinSimilarity, wantExp.MinEngine, wantExp.MinSimilarity)
		}
	}

	fresh := post()
	if fresh.Cached {
		t.Fatal("first request marked cached")
	}
	checkExplanation(fresh)

	// Same upload again: served from the verdict cache, explanation derived
	// after the fact — and still identical.
	cached := post()
	if !cached.Cached {
		t.Fatal("repeat request not served from cache")
	}
	checkExplanation(cached)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(raw)
	for _, stage := range obs.Stages {
		mustContain(t, metrics, `mvpears_stage_seconds_count{stage="`+stage+`"} 1`)
	}
	for _, engine := range append([]string{"DS0"}, sys.AuxiliaryNames()...) {
		mustContain(t, metrics, `mvpears_engine_seconds_count{engine="`+engine+`"} 1`)
	}
	mustContain(t, metrics,
		"mvpears_engine_min_similarity_count 1",
		"mvpears_engine_similarity_count",
	)
}

// TestExplainNotRequestedOmitsEvidence pins the default: without
// ?explain=1 the response carries no explanation object.
func TestExplainNotRequestedOmitsEvidence(t *testing.T) {
	_, ts := newTestServer(t, Config{Backend: instantStub()})
	det := decodeBody[DetectionJSON](t, postWAV(t, ts.URL, wavBody(t, 8000, 256)))
	if det.Explanation != nil {
		t.Fatalf("unexpected explanation: %+v", det.Explanation)
	}
}
