package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mvpears"
	"mvpears/internal/obs"
)

// tracingStub is an instant benign stub that records a per-engine
// transcribe span into the request's trace, standing in for the real
// detector's stage spans so cross-replica stitching can be asserted by
// span name without training a system.
func tracingStub() *stubBackend {
	b := instantStub()
	b.detect = func(ctx context.Context, _ *mvpears.Clip) (*mvpears.Detection, error) {
		start := time.Now()
		det := benignDetection()
		obs.TraceFrom(ctx).Record(obs.StageTranscribe, "DS1", start)
		return det, nil
	}
	return b
}

// detectLogLines decodes the access-log buffer and returns the records
// for the detect route, each with the set of span names it carried.
type detectLogLine struct {
	rec   map[string]any
	spans []string
}

func detectLogLines(t *testing.T, buf *syncBuffer) []detectLogLine {
	t.Helper()
	var out []detectLogLine
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad access-log line %q: %v", line, err)
		}
		if rec["route"] != "detect" {
			continue
		}
		l := detectLogLine{rec: rec}
		if spans, ok := rec["spans"].(map[string]any); ok {
			for _, v := range spans {
				if sp, ok := v.(map[string]any); ok {
					if name, ok := sp["span"].(string); ok {
						l.spans = append(l.spans, name)
					}
				}
			}
		}
		out = append(out, l)
	}
	return out
}

func hasSpan(l detectLogLine, name string) bool {
	for _, sp := range l.spans {
		if sp == name {
			return true
		}
	}
	return false
}

func hasSpanPrefix(l detectLogLine, prefix string) bool {
	for _, sp := range l.spans {
		if strings.HasPrefix(sp, prefix) {
			return true
		}
	}
	return false
}

// traceLogPair boots a tracing cluster pair whose every request logs with
// full span detail (slow threshold 1ns).
func traceLogPair(t *testing.T, backendA, backendB Backend) (sA, sB *Server, tsA, tsB *httptest.Server, buf *syncBuffer) {
	t.Helper()
	buf = &syncBuffer{}
	a, b, ta, tb := clusterPair(t, backendA, backendB, func(cfg *Config) {
		cfg.AccessLog = buf
		cfg.SlowRequestThreshold = time.Nanosecond
	})
	return a, b, ta, tb, buf
}

// TestClusterForwardStitchedTrace is the trace-propagation acceptance
// check: a detection forwarded to its remote owner produces ONE stitched
// trace on the requester whose span list carries both local work (decode,
// cluster_forward) and the owner's engine span, identified by the @peer
// suffix — not an opaque remote wait.
func TestClusterForwardStitchedTrace(t *testing.T) {
	sA, sB, _, tsB, buf := traceLogPair(t,
		&fpStub{tracingStub(), "model-a"}, &fpStub{tracingStub(), "model-a"})
	body := bodyOwnedBy(t, sB, "model-a", false) // owned by A

	det := decodeBody[DetectionJSON](t, postWAV(t, tsB.URL, body))
	if !det.Remote || det.Cached {
		t.Fatalf("forwarded detect = cached=%v remote=%v, want remote fresh", det.Cached, det.Remote)
	}

	var lines []detectLogLine
	waitFor(t, func() bool {
		lines = detectLogLines(t, buf)
		return len(lines) >= 1
	})
	if len(lines) != 1 {
		t.Fatalf("forwarded detection produced %d detect log lines, want one stitched trace", len(lines))
	}
	l := lines[0]
	if l.rec["remote"] != true {
		t.Fatalf("log record not marked remote: %v", l.rec)
	}
	remoteSpan := "transcribe:DS1@" + sA.ClusterSelf()
	for _, want := range []string{"decode", "cluster_forward", remoteSpan} {
		if !hasSpan(l, want) {
			t.Errorf("stitched trace missing span %q (have %v)", want, l.spans)
		}
	}
	// The requester observed the round trip into the per-peer RTT family.
	if !strings.Contains(metricsBody(t, tsB.URL),
		`mvpears_cluster_rtt_seconds_count{peer="`+sA.ClusterSelf()+`"}`) {
		t.Error("requester metrics missing the per-peer RTT histogram")
	}
}

// TestClusterRemoteHitTrace: a remote cache hit stitches the
// cluster_forward span (the round trip happened) but no remote engine
// spans (the owner ran no pipeline).
func TestClusterRemoteHitTrace(t *testing.T) {
	sA, sB, tsA, tsB, buf := traceLogPair(t,
		&fpStub{tracingStub(), "model-a"}, &fpStub{tracingStub(), "model-a"})
	_ = sA
	body := bodyOwnedBy(t, sB, "model-a", false)

	// Prime the owner, then hit it remotely from B.
	postWAV(t, tsA.URL, body)
	det := decodeBody[DetectionJSON](t, postWAV(t, tsB.URL, body))
	if !det.Remote || !det.Cached {
		t.Fatalf("second post = cached=%v remote=%v, want remote hit", det.Cached, det.Remote)
	}

	var hit *detectLogLine
	waitFor(t, func() bool {
		lines := detectLogLines(t, buf)
		for i, l := range lines {
			if l.rec["remote"] == true && l.rec["cached"] == true {
				hit = &lines[i]
				return true
			}
		}
		return false
	})
	if !hasSpan(*hit, "cluster_forward") {
		t.Errorf("remote hit trace missing cluster_forward (have %v)", hit.spans)
	}
	if hasSpanPrefix(*hit, "transcribe:DS1@") {
		t.Errorf("remote HIT stitched engine spans that never ran: %v", hit.spans)
	}
}

// TestClusterHedgedTrace: when a hedged dispatch wins, the peer's engine
// span stitches into the requester's trace exactly like a forward.
func TestClusterHedgedTrace(t *testing.T) {
	release := make(chan struct{})
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()
	slow := instantStub()
	innerSlow := slow.detect
	slow.detect = func(ctx context.Context, clip *mvpears.Clip) (*mvpears.Detection, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return innerSlow(ctx, clip)
	}
	buf := &syncBuffer{}
	sA, sB, tsA, _ := clusterPair(t, &fpStub{slow, "model-a"}, &fpStub{tracingStub(), "model-a"},
		func(cfg *Config) {
			cfg.AccessLog = buf
			cfg.SlowRequestThreshold = time.Nanosecond
			cfg.Cluster.HedgeAfter = 20 * time.Millisecond
		})
	body := bodyOwnedBy(t, sA, "model-a", true) // owned by A: hedge path

	det := decodeBody[DetectionJSON](t, postWAV(t, tsA.URL, body))
	if !det.Remote {
		t.Fatalf("hedged detect remote=%v, want the peer's answer", det.Remote)
	}
	var win *detectLogLine
	waitFor(t, func() bool {
		lines := detectLogLines(t, buf)
		for i, l := range lines {
			if l.rec["remote"] == true {
				win = &lines[i]
				return true
			}
		}
		return false
	})
	remoteSpan := "transcribe:DS1@" + sB.ClusterSelf()
	for _, want := range []string{"cluster_forward", remoteSpan} {
		if !hasSpan(*win, want) {
			t.Errorf("hedge-win trace missing span %q (have %v)", want, win.spans)
		}
	}
	close(release)
}

// TestClusterExplainBitIdentical runs a real trained system on both
// replicas and requires ?explain=1 evidence to be bit-identical no matter
// how the verdict was served: locally fresh, forwarded to the remote
// owner, or answered from cache.
func TestClusterExplainBitIdentical(t *testing.T) {
	sys := e2eSystem(t)
	sB1, sB2, tsB1, tsB2 := clusterPair(t, sys, sys, nil)
	_, _ = sB1, sB2

	clip, err := sys.GenerateSpeech("close the window please", 77)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.Detect(clip)
	if err != nil {
		t.Fatal(err)
	}
	wantExp := sys.Explain(want)
	wav := encodeWAV(t, clip)

	checkExp := func(name string, det DetectionJSON) {
		t.Helper()
		exp := det.Explanation
		if exp == nil {
			t.Fatalf("%s: no explanation", name)
		}
		if exp.MinSimilarity != wantExp.MinSimilarity || exp.MinEngine != wantExp.MinEngine {
			t.Fatalf("%s: min %q=%v, want %q=%v", name, exp.MinEngine, exp.MinSimilarity, wantExp.MinEngine, wantExp.MinSimilarity)
		}
		aux := sys.AuxiliaryNames()
		for i, nameAux := range aux {
			ev := exp.Engines[i+1]
			if ev.Similarity == nil || *ev.Similarity != want.Scores[i] {
				t.Fatalf("%s: %s similarity %v, want exactly %v", name, nameAux, ev.Similarity, want.Scores[i])
			}
		}
	}

	post := func(ts *httptest.Server) DetectionJSON {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/detect?explain=1", "audio/wav", bytes.NewReader(wav))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		return decodeBody[DetectionJSON](t, resp)
	}

	// First post to replica 1: locally fresh or forwarded, depending on
	// ring placement — either way the evidence must be exact.
	first := post(tsB1)
	checkExp("first", first)
	// Replica 2 next: a remote hit or local hit (replica 1 populated the
	// owner and itself).
	second := post(tsB2)
	checkExp("second", second)
	// And a straight repeat: local cache hit with derived-after-the-fact
	// explanation.
	third := post(tsB1)
	if !third.Cached {
		t.Fatal("repeat post not served from cache")
	}
	checkExp("cached", third)
}
