package server

import (
	"strings"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func mustContain(t *testing.T, out string, lines ...string) {
	t.Helper()
	for _, line := range lines {
		if !strings.Contains(out, line) {
			t.Fatalf("output missing %q:\n%s", line, out)
		}
	}
}

func TestCounterAndGaugeRendering(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs.")
	g := r.Gauge("depth", "Depth.")
	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Inc()
	g.Dec()
	mustContain(t, render(t, r),
		"# HELP jobs_total Jobs.",
		"# TYPE jobs_total counter",
		"jobs_total 5",
		"# TYPE depth gauge",
		"depth 7",
	)
}

func TestCounterVecRendering(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("requests_total", "Requests.", "route", "code")
	v.With("detect", "200").Add(3)
	v.With("detect", "429").Inc()
	v.With("metrics", "200").Inc()
	// Same labels return the same child.
	v.With("detect", "200").Inc()
	out := render(t, r)
	mustContain(t, out,
		`requests_total{route="detect",code="200"} 4`,
		`requests_total{route="detect",code="429"} 1`,
		`requests_total{route="metrics",code="200"} 1`,
	)
	// Deterministic ordering: children render sorted by label key.
	if strings.Index(out, `code="200"`) > strings.Index(out, `code="429"`) {
		t.Fatalf("label series not sorted:\n%s", out)
	}
}

func TestHistogramRendering(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.1) // on the bound: counted in le="0.1"
	h.Observe(0.5)
	h.Observe(3)
	mustContain(t, render(t, r),
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.1"} 2`,
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="+Inf"} 4`,
		"latency_seconds_sum 3.65",
		"latency_seconds_count 4",
	)
	if h.Count() != 4 {
		t.Fatalf("count %d", h.Count())
	}
}

func TestHistogramVecRendering(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("stage_seconds", "Stages.", []float64{0.5}, "stage")
	v.With("recognition").Observe(0.2)
	v.With("classify").Observe(0.9)
	mustContain(t, render(t, r),
		`stage_seconds_bucket{stage="recognition",le="0.5"} 1`,
		`stage_seconds_bucket{stage="classify",le="0.5"} 0`,
		`stage_seconds_bucket{stage="classify",le="+Inf"} 1`,
		`stage_seconds_sum{stage="classify"} 0.9`,
		`stage_seconds_count{stage="recognition"} 1`,
	)
}

func TestGaugeFuncAndLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("queue_depth", "Queue.", func() float64 { return 3 })
	v := r.CounterVec("odd_total", "Odd.", "name")
	v.With(`a"b\c`).Inc()
	mustContain(t, render(t, r),
		"queue_depth 3",
		`odd_total{name="a\"b\\c"} 1`,
	)
}
