package server

import (
	"bytes"
	"errors"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mvpears/internal/audio"
	"mvpears/internal/vcache"
)

// TestHotReloadSwapsModelWithZeroFailures is the zero-downtime acceptance
// check: requests hammer the server while the model is hot-reloaded (with
// a deliberately slow artifact load); every single request must answer
// 200, and the fingerprint change must invalidate the old model's cached
// verdicts without any invalidation protocol.
func TestHotReloadSwapsModelWithZeroFailures(t *testing.T) {
	stubA, callsA := countingStub()
	stubB, callsB := countingStub()
	reload := func() (Backend, error) {
		time.Sleep(50 * time.Millisecond) // a real artifact load is slow
		return &fpStub{stubB, "model-b"}, nil
	}
	s, ts := newTestServer(t, Config{
		Backend: &fpStub{stubA, "model-a"},
		Reload:  reload,
		Workers: 4,
		Logger:  log.New(io.Discard, "", 0),
	})
	body := wavBody(t, 8000, 256)
	// primed is cached under model-a ONLY — the load loop never posts it,
	// so after the swap it proves the fingerprint-keyed invalidation.
	primed := wavBody(t, 8000, 300)

	// Prime the old model's cache.
	if det := decodeBody[DetectionJSON](t, postWAV(t, ts.URL, body)); det.Cached {
		t.Fatal("first request served from an empty cache")
	}
	if det := decodeBody[DetectionJSON](t, postWAV(t, ts.URL, primed)); det.Cached {
		t.Fatal("priming request served from an empty cache")
	}
	if det := decodeBody[DetectionJSON](t, postWAV(t, ts.URL, primed)); !det.Cached {
		t.Fatal("old model's cache is not serving hits")
	}

	// Continuous load across the swap.
	stop := make(chan struct{})
	var failed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/detect", "audio/wav", bytes.NewReader(body))
				if err != nil {
					failed.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failed.Add(1)
				}
			}
		}()
	}

	// /readyz flips to 503 while the replacement artifact loads, steering
	// load balancers away — but the in-flight load above keeps succeeding.
	reloadDone := make(chan error, 1)
	go func() { reloadDone <- s.Reload() }()
	waitFor(t, func() bool { return s.reloadInProgress.Load() })
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if s.reloadInProgress.Load() && resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz during reload = %d, want 503", resp.StatusCode)
	}
	if err := <-reloadDone; err != nil {
		t.Fatalf("reload: %v", err)
	}
	close(stop)
	wg.Wait()
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d requests failed across the hot reload, want 0", n)
	}

	if got := s.ModelFingerprint(); got != "model-b" {
		t.Fatalf("post-reload fingerprint %q, want model-b", got)
	}
	if got := s.Reloads(); got != 1 {
		t.Fatalf("reload count %d, want 1", got)
	}
	// Bytes that are cached under the OLD model must be a cache MISS under
	// the new one (new fingerprint, new key) and run on the new backend.
	before := callsB.Load()
	det := decodeBody[DetectionJSON](t, postWAV(t, ts.URL, primed))
	if det.Cached {
		t.Fatal("new model served the old model's cached verdict")
	}
	if callsB.Load() != before+1 {
		t.Fatal("post-reload detection did not run on the new backend")
	}
	if callsA.Load() == 0 {
		t.Fatal("old backend never ran (test wiring broken)")
	}
	// Readiness is restored.
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-reload readyz = %d, want 200", resp.StatusCode)
	}
}

func TestReloadFailureKeepsOldModel(t *testing.T) {
	stub, calls := countingStub()
	s, ts := newTestServer(t, Config{
		Backend: &fpStub{stub, "model-a"},
		Reload:  func() (Backend, error) { return nil, errors.New("artifact corrupt") },
		Logger:  log.New(io.Discard, "", 0),
	})
	if err := s.Reload(); err == nil {
		t.Fatal("reload of a corrupt artifact reported success")
	}
	if got := s.ModelFingerprint(); got != "model-a" {
		t.Fatalf("failed reload changed the fingerprint to %q", got)
	}
	if resp := postWAV(t, ts.URL, wavBody(t, 8000, 256)); resp.StatusCode != http.StatusOK {
		t.Fatalf("old model stopped serving after a failed reload: %d", resp.StatusCode)
	}
	if calls.Load() != 1 {
		t.Fatalf("backend ran %d detections, want 1", calls.Load())
	}
	if !bytes.Contains([]byte(metricsBody(t, ts.URL)), []byte("mvpears_model_reload_failures_total 1")) {
		t.Error("metrics missing the reload failure count")
	}
}

func TestReloadNotConfigured(t *testing.T) {
	s, _ := newTestServer(t, Config{Backend: instantStub()})
	if err := s.Reload(); !errors.Is(err, ErrReloadNotConfigured) {
		t.Fatalf("Reload without Config.Reload = %v, want ErrReloadNotConfigured", err)
	}
}

// TestReloadzEndpoint drives the admin surface: POST triggers a reload,
// GET is rejected, and an unconfigured server answers 404.
func TestReloadzEndpoint(t *testing.T) {
	stubB, _ := countingStub()
	s, err := New(Config{
		Backend: &fpStub{instantStub(), "model-a"},
		Reload:  func() (Backend, error) { return &fpStub{stubB, "model-b"}, nil },
		Logger:  log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	admin := httptest.NewServer(s.AdminHandler())
	t.Cleanup(admin.Close)

	resp, err := http.Get(admin.URL + "/reloadz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /reloadz = %d, want 405", resp.StatusCode)
	}

	resp, err = http.Post(admin.URL+"/reloadz", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	out := decodeBody[ReloadJSON](t, resp)
	if resp.StatusCode != http.StatusOK || !out.Reloaded || out.ModelFingerprint != "model-b" || out.Reloads != 1 {
		t.Fatalf("POST /reloadz = %d %+v", resp.StatusCode, out)
	}

	// Unconfigured: 404.
	s2, err := New(Config{Backend: instantStub(), Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	admin2 := httptest.NewServer(s2.AdminHandler())
	t.Cleanup(admin2.Close)
	resp, err = http.Post(admin2.URL+"/reloadz", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("POST /reloadz unconfigured = %d, want 404", resp.StatusCode)
	}
}

// TestReloadClusterWideInvalidation: after the owner reloads to a new
// model, a requester still on the old model keeps working — the skewed
// owner declines the forward and the requester serves locally. No verdict
// ever crosses models.
func TestReloadClusterWideInvalidation(t *testing.T) {
	stubA, _ := countingStub()
	stubA2, callsA2 := countingStub()
	stubB, callsB := countingStub()
	sA, sB, tsA, tsB := clusterPair(t, &fpStub{stubA, "model-a"}, &fpStub{stubB, "model-a"}, nil)
	sA.cfg.Reload = func() (Backend, error) { return &fpStub{stubA2, "model-a2"}, nil }
	body := bodyOwnedBy(t, sB, "model-a", false) // owned by A

	// Prime on the owner, confirm the remote hit, then reload the owner.
	postWAV(t, tsA.URL, body)
	if det := decodeBody[DetectionJSON](t, postWAV(t, tsB.URL, body)); !det.Remote {
		t.Fatal("priming remote hit failed")
	}
	if err := sA.Reload(); err != nil {
		t.Fatal(err)
	}
	// A second distinct body (so B's local cache is cold) still owned by
	// A under B's OLD fingerprint: A must decline (it cannot verify the
	// key under model-a2) and B must fall back to a local detection.
	var body2 []byte
	for n := 320; n < 320+64; n++ {
		cand := wavBody(t, 8000, n)
		pcm, err := audio.ReadWAVPCM(bytes.NewReader(cand), 1<<20, nil)
		if err != nil {
			t.Fatal(err)
		}
		key := vcache.KeyPCM16("model-a", pcm.SampleRate, pcm.Data)
		if _, self := sB.node.Owner(key); !self {
			body2 = cand
			break
		}
	}
	if body2 == nil {
		t.Fatal("no fresh A-owned body in 64 candidates")
	}
	before := callsB.Load()
	det := decodeBody[DetectionJSON](t, postWAV(t, tsB.URL, body2))
	if det.Remote {
		t.Fatal("reloaded owner answered a key from the old model")
	}
	if callsB.Load() != before+1 {
		t.Fatal("requester did not fall back to local detection")
	}
	if callsA2.Load() != 0 {
		t.Fatal("the reloaded owner ran a detection for an old-model key")
	}
}

// TestReloadModelInfoAtomicFlip probes the identity surfaces across a hot
// reload: /infoz and the mvpears_model_info gauge read the same atomic
// backend pointer, so an /infoz -> /metrics -> /infoz probe that sees the
// same fingerprint on both /infoz reads must see that exact fingerprint
// in the metrics scrape between them. A mismatch would mean the identity
// surfaces flip at different moments — the skew this test exists to rule
// out.
func TestReloadModelInfoAtomicFlip(t *testing.T) {
	stubB, _ := countingStub()
	s, err := New(Config{
		Backend: &fpStub{instantStub(), "model-a"},
		Reload: func() (Backend, error) {
			time.Sleep(20 * time.Millisecond)
			return &fpStub{stubB, "model-b"}, nil
		},
		Logger: log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	admin := httptest.NewServer(s.AdminHandler())
	t.Cleanup(admin.Close)

	infoFP := func() string {
		resp, err := http.Get(admin.URL + "/infoz")
		if err != nil {
			t.Fatal(err)
		}
		info := decodeBody[InfoJSON](t, resp)
		resp.Body.Close()
		return info.ModelFingerprint
	}
	metricFP := func() string {
		raw := metricsBody(t, admin.URL)
		const prefix = `mvpears_model_info{fingerprint="`
		i := strings.Index(raw, prefix)
		if i < 0 {
			t.Fatalf("metrics missing mvpears_model_info:\n%s", raw)
		}
		rest := raw[i+len(prefix):]
		return rest[:strings.Index(rest, `"`)]
	}

	reloadDone := make(chan error, 1)
	go func() { reloadDone <- s.Reload() }()

	var sawNew bool
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		fp1 := infoFP()
		mid := metricFP()
		fp2 := infoFP()
		if fp1 == fp2 && mid != fp1 {
			t.Fatalf("identity skew: /infoz %q on both sides of a /metrics scrape reporting %q", fp1, mid)
		}
		if fp1 == "model-b" {
			sawNew = true
			break
		}
	}
	if err := <-reloadDone; err != nil {
		t.Fatalf("reload: %v", err)
	}
	if !sawNew {
		// The loop may have raced past the swap; the surfaces must agree
		// on the new model now regardless.
		if fp := infoFP(); fp != "model-b" {
			t.Fatalf("post-reload /infoz fingerprint %q, want model-b", fp)
		}
	}
	if fp := metricFP(); fp != "model-b" {
		t.Fatalf("post-reload mvpears_model_info fingerprint %q, want model-b", fp)
	}
}
