// Package server is the online serving subsystem of MVP-EARS: a
// long-lived HTTP daemon that puts a trained detection system in front of
// an ASR pipeline, the deployment the paper budgets per-query overhead
// for (§V-I). It provides
//
//   - POST /v1/detect        — one WAV upload -> verdict JSON
//   - POST /v1/detect/batch  — multipart WAVs -> per-file verdicts
//   - GET  /healthz, /readyz — liveness / readiness
//   - GET  /metrics          — Prometheus text format, hand-rolled
//
// Requests flow through a bounded worker pool behind a fixed-depth
// admission queue: overload answers 429 with Retry-After instead of
// growing goroutines, per-request deadlines cancel detection work via
// context, and Shutdown drains gracefully (stop admitting, finish
// in-flight, keep /metrics consistent).
package server

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"sync/atomic"
	"time"

	"mvpears"
	"mvpears/internal/cluster"
	"mvpears/internal/obs"
	"mvpears/internal/obs/drift"
	"mvpears/internal/obs/slo"
	"mvpears/internal/vcache"
)

// Rejection reasons for mvpears_rejected_total, the unified load-shed
// counter: every deliberate "no" the daemon answers, regardless of which
// subsystem said it.
const (
	rejectQueueFull      = "queue_full"      // admission queue 429s
	rejectStreamSessions = "stream_sessions" // streaming session limit
	rejectPeerBusy       = "peer_busy"       // cluster busy-declines sent to peers
)

// DriftReferencer is implemented by backends that carry a
// calibration-time drift reference with their model artifact
// (*mvpears.System derives one from its benign score pools). Without it
// the drift monitor still tracks distributions but never scores them.
type DriftReferencer interface {
	DriftReference() *drift.Reference
}

// SLOTargets declares the good-event fractions for the daemon's built-in
// service-level objectives. Zero values get defaults.
type SLOTargets struct {
	// Latency is the fraction of detect requests that must answer within
	// 250ms (default 0.99). The bound rides the existing request-latency
	// histogram's 0.25s bucket boundary.
	Latency float64
	// Availability is the fraction of HTTP requests that must not 5xx
	// (default 0.999).
	Availability float64
	// Quality is the fraction of verdicts that must be served while no
	// drift family is tripped (default 0.99).
	Quality float64
}

func (t *SLOTargets) applyDefaults() {
	if t.Latency <= 0 {
		t.Latency = 0.99
	}
	if t.Availability <= 0 {
		t.Availability = 0.999
	}
	if t.Quality <= 0 {
		t.Quality = 0.99
	}
}

// sloDetectLatencyBound is the latency SLO's good-event bound. It must
// sit on a DefaultLatencyBuckets boundary so CountAtOrBelow is exact.
const sloDetectLatencyBound = 0.25

// Backend is the detection capability the server fronts. *mvpears.System
// satisfies it; tests substitute stubs to exercise overload and failure
// paths without training engines.
type Backend interface {
	// DetectCtx classifies one clip, honoring ctx cancellation.
	DetectCtx(ctx context.Context, clip *mvpears.Clip) (*mvpears.Detection, error)
	// DetectBatchCtx classifies a batch in input order.
	DetectBatchCtx(ctx context.Context, clips []*mvpears.Clip) ([]*mvpears.Detection, error)
	// SampleRate is the rate uploads are resampled to.
	SampleRate() int
	// AuxiliaryNames lists the auxiliary engines, aligned with scores.
	AuxiliaryNames() []string
}

var _ Backend = (*mvpears.System)(nil)

// ModelFingerprinter is implemented by backends whose model has a stable
// content fingerprint (*mvpears.System hashes its persisted artifact).
// The verdict cache requires it: keys are prefixed with the fingerprint
// so a cache can never serve verdicts computed by a different model, and
// because the fingerprint is derived from the artifact bytes, keys stay
// valid across daemon restarts of the same model. A backend without a
// fingerprint serves with the cache disabled.
type ModelFingerprinter interface {
	ModelFingerprint() (string, error)
}

var _ ModelFingerprinter = (*mvpears.System)(nil)

// Explainer is implemented by backends that can derive a verdict
// explanation from a Detection after the fact. The serving layer uses it
// for ?explain=1 requests answered from the verdict cache or a shared
// singleflight, where the stored Detection may predate the explain request
// — the encoding is deterministic in the transcriptions, so a late
// explanation is identical to one computed with the verdict.
type Explainer interface {
	Explain(det *mvpears.Detection) *mvpears.Explanation
}

var _ Explainer = (*mvpears.System)(nil)

// Config parameterizes a Server. The zero value of every optional field
// gets a sensible default in New.
type Config struct {
	// Backend is the trained detection system. Required.
	Backend Backend
	// Workers bounds concurrent detections (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds waiting detections (default 2*Workers). Work
	// beyond Workers+QueueDepth is rejected with 429.
	QueueDepth int
	// MaxUploadBytes bounds one WAV payload (default 16 MiB).
	MaxUploadBytes int64
	// MaxBatchFiles bounds the parts of one batch request (default 64).
	MaxBatchFiles int
	// RequestTimeout is the per-request detection deadline (default 30s).
	RequestTimeout time.Duration
	// Logger receives request-level problems (default log.Default()).
	Logger *log.Logger
	// CacheEntries bounds the verdict cache's entry count (default 4096).
	CacheEntries int
	// CacheBytes bounds the verdict cache's resident bytes (default 64 MiB).
	CacheBytes int64
	// CacheOff disables the verdict cache and singleflight collapsing.
	// The cache is also disabled (with a log line) when Backend does not
	// implement ModelFingerprinter.
	CacheOff bool
	// Cache optionally injects a prebuilt verdict cache, e.g. one shared
	// across Server instances in tests. Nil builds a private cache from
	// CacheEntries/CacheBytes.
	Cache *vcache.Cache[*mvpears.Detection]
	// AccessLog receives structured JSON request logs (one line per
	// sampled request). Nil disables access logging.
	AccessLog io.Writer
	// LogSampleRate is the fraction of ordinary requests to log (default
	// 1 = all; slow requests and 5xx responses always log).
	LogSampleRate float64
	// SlowRequestThreshold is the latency at which a request always logs
	// with full span detail (default 1s).
	SlowRequestThreshold time.Duration
	// Audit, when non-nil, receives one JSONL entry per adversarial
	// verdict served.
	Audit *obs.AuditSink
	// Stream, when non-nil, enables the live streaming endpoints
	// (/v1/detect/stream and /v1/detect/ws). Requires a Backend that
	// implements StreamBackend.
	Stream *StreamConfig
	// Reload, when non-nil, loads a replacement backend for zero-downtime
	// hot model reload (Server.Reload, POST /reloadz on the admin
	// listener, SIGHUP in mvpearsd). See reload.go.
	Reload func() (Backend, error)
	// Cluster, when non-nil, joins this server to a replica fleet that
	// shares the verdict cache (consistent hashing on the cache key) and
	// hedges slow detections to idle peers. Requires the cache. See
	// cluster.go.
	Cluster *ClusterConfig
	// Drift tunes the detection-quality drift monitor (always on; the
	// zero value gets drift.Config defaults). Config.Drift.OnDrift is
	// chained after the built-in audit hook.
	Drift drift.Config
	// SLO sets the built-in objectives' targets (zero values get
	// defaults).
	SLO SLOTargets
}

func (c *Config) applyDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 16 << 20
	}
	if c.MaxBatchFiles <= 0 {
		c.MaxBatchFiles = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.Logger == nil {
		c.Logger = log.Default()
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 4096
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.LogSampleRate <= 0 {
		c.LogSampleRate = 1
	}
	if c.SlowRequestThreshold <= 0 {
		c.SlowRequestThreshold = time.Second
	}
	c.SLO.applyDefaults()
}

// Server is one mvpearsd instance: handlers, worker pool and metrics.
type Server struct {
	cfg      Config
	pool     *workerPool
	mux      *http.ServeMux
	httpSrv  *http.Server
	draining atomic.Bool

	metrics *Registry
	// requestsTotal counts finished HTTP requests by route and status.
	requestsTotal *CounterVec
	// requestSeconds tracks request latency by route.
	requestSeconds *HistogramVec
	// stageSeconds tracks the per-stage detection cost (§V-I split).
	stageSeconds *HistogramVec
	// pipelineSeconds tracks the traced pipeline spans by stage (decode /
	// transcribe / phonetic / similarity / classify).
	pipelineSeconds *HistogramVec
	// engineSeconds tracks per-engine transcription wall time.
	engineSeconds *HistogramVec
	// engineSimilarity tracks the target-vs-auxiliary similarity score
	// distribution per auxiliary engine (score drift = AE early warning).
	engineSimilarity *HistogramVec
	// minSimilarity tracks the per-detection minimum auxiliary score.
	minSimilarity *Histogram
	// detectionsTotal counts verdicts served.
	detectionsTotal *CounterVec
	// cascadeEnginesRun tracks how many auxiliary engines each cascaded
	// detection actually ran (short-circuits land in the low buckets).
	cascadeEnginesRun *Histogram
	// cascadeShortCircuits counts detections the cascade answered from the
	// partial similarity vector without running the full ensemble.
	cascadeShortCircuits *Counter
	// cascadeSampledFull counts the deterministic 1-in-N full-ensemble
	// monitoring runs; divided by cascadeEnginesRun's count it is the
	// observed sampling fraction.
	cascadeSampledFull *Counter
	// inFlight gauges requests currently inside a handler.
	inFlight *Gauge
	// queueRejected counts 429s from the admission queue.
	queueRejected *Counter
	// panicsTotal counts recovered handler panics.
	panicsTotal *Counter
	// reqLog writes the structured access log; nil when disabled.
	reqLog *obs.RequestLogger
	// start anchors the daemon's uptime (for /infoz).
	start time.Time

	// be holds the current backendState: the model-derived identity
	// (backend, fingerprint, auxiliary names, stream manager) that hot
	// reload swaps atomically. See reload.go.
	be atomic.Pointer[backendState]
	// reloadInProgress gates /readyz to 503 while a replacement model is
	// loading (the CPU-heavy part of a reload).
	reloadInProgress atomic.Bool
	// reloadCount counts completed reloads (for /infoz).
	reloadCount atomic.Uint64
	// reloadsTotal / reloadFailures are the metric faces of reloads.
	reloadsTotal   *Counter
	reloadFailures *Counter

	// vc is the cross-request verdict cache; nil when caching is off.
	vc *vcache.Cache[*mvpears.Detection]
	// flight collapses concurrent duplicate detections onto one worker.
	flight *vcache.Group[*mvpears.Detection]

	// node is the cluster peer node; nil when clustering is off. See
	// cluster.go for the requester/owner split.
	node *cluster.Node
	// clusterCancel stops the peer listener's accept loop on Shutdown.
	clusterCancel context.CancelFunc
	// hedge policy (resolved from ClusterConfig in startCluster).
	hedgeAfter    time.Duration
	hedgeFactor   float64
	hedgeFloor    time.Duration
	getProbeBytes int
	// detectCostNS tracks an EWMA of the local fresh-detection cost; it
	// budgets the hedge delay alongside the backend's live engine costs.
	detectCostNS atomic.Int64
	// Cluster metrics, always registered (zero when clustering is off) so
	// the exposition shape does not depend on configuration.
	clusterForwards  *CounterVec
	clusterServed    *CounterVec
	clusterHedges    *Counter
	clusterHedgeWins *Counter

	// Streaming metrics, always registered (zero when streaming is off)
	// so the exposition shape does not depend on configuration.
	streamSessions      *Counter
	streamRejected      *Counter
	streamEvicted       *Counter
	streamWindows       *CounterVec
	streamEarlyExits    *Counter
	streamWindowSeconds *Histogram

	// clusterRTTSeconds tracks per-peer RPC round-trip time (the wire
	// half of a forward, as the requester sees it).
	clusterRTTSeconds *HistogramVec
	// rejectedTotal unifies load-shed rejections across subsystems by
	// reason (queue_full / stream_sessions / peer_busy).
	rejectedTotal *CounterVec

	// driftMon scores live detection-quality distributions against the
	// model's calibration reference; probe watches query shapes for
	// mutate-one-sample probing campaigns. Both always exist.
	driftMon *drift.Monitor
	probe    *drift.ProbeWatcher
	// sloEng evaluates the built-in objectives' burn rates at scrape
	// time (no background goroutine; see internal/obs/slo).
	sloEng *slo.Engine
	// slo* atomics are the raw counters behind the availability and
	// quality objectives (requestsTotal children are not introspectable
	// per-status, and verdict quality needs the drift verdict at serve
	// time).
	sloHTTPTotal       atomic.Uint64
	sloHTTP5xx         atomic.Uint64
	sloVerdicts        atomic.Uint64
	sloVerdictsDrifted atomic.Uint64
	// buildVersion is resolved once from the embedded build info (for
	// mvpears_build_info and /statusz).
	buildVersion string
}

// resolveBuildVersion extracts the VCS revision baked into the binary,
// falling back to "dev" for unstamped test builds.
func resolveBuildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" && kv.Value != "" {
				return kv.Value
			}
		}
	}
	return "dev"
}

// New validates cfg, applies defaults and assembles a Server (no
// listening socket yet — use Serve/ListenAndServe, or Handler for tests).
func New(cfg Config) (*Server, error) {
	if cfg.Backend == nil {
		return nil, fmt.Errorf("server: Config.Backend is required")
	}
	cfg.applyDefaults()
	s := &Server{
		cfg:     cfg,
		pool:    newWorkerPool(cfg.Workers, cfg.QueueDepth),
		mux:     http.NewServeMux(),
		metrics: NewRegistry(),
		start:   time.Now(),
	}
	if cfg.AccessLog != nil {
		s.reqLog = obs.NewRequestLogger(cfg.AccessLog, cfg.LogSampleRate, cfg.SlowRequestThreshold)
	}
	if !cfg.CacheOff {
		if fper, ok := cfg.Backend.(ModelFingerprinter); !ok {
			cfg.Logger.Printf("mvpearsd: verdict cache disabled: backend exposes no model fingerprint")
		} else if _, err := fper.ModelFingerprint(); err != nil {
			cfg.Logger.Printf("mvpearsd: verdict cache disabled: fingerprinting model: %v", err)
		} else {
			s.vc = cfg.Cache
			if s.vc == nil {
				s.vc = vcache.New[*mvpears.Detection](cfg.CacheEntries, cfg.CacheBytes)
			}
			s.flight = &vcache.Group[*mvpears.Detection]{Timeout: cfg.RequestTimeout}
		}
	}
	s.requestsTotal = s.metrics.CounterVec(
		"mvpears_requests_total", "Finished HTTP requests.", "route", "code")
	s.requestSeconds = s.metrics.HistogramVec(
		"mvpears_request_duration_seconds", "End-to-end request latency.",
		DefaultLatencyBuckets, "route")
	s.stageSeconds = s.metrics.HistogramVec(
		"mvpears_detect_stage_seconds", "Per-stage detection cost (recognition/similarity/classify).",
		DefaultLatencyBuckets, "stage")
	s.pipelineSeconds = s.metrics.HistogramVec(
		"mvpears_stage_seconds", "Traced pipeline span wall time by stage (decode/transcribe/phonetic/similarity/classify).",
		DefaultLatencyBuckets, "stage")
	s.engineSeconds = s.metrics.HistogramVec(
		"mvpears_engine_seconds", "Per-engine transcription wall time.",
		DefaultLatencyBuckets, "engine")
	s.engineSimilarity = s.metrics.HistogramVec(
		"mvpears_engine_similarity", "Target-vs-auxiliary similarity score distribution per auxiliary engine.",
		SimilarityBuckets, "engine")
	s.minSimilarity = s.metrics.Histogram(
		"mvpears_engine_min_similarity", "Per-detection minimum auxiliary similarity score (transferable-AE early warning).",
		SimilarityBuckets)
	s.detectionsTotal = s.metrics.CounterVec(
		"mvpears_detections_total", "Verdicts served.", "verdict")
	// Cascade series are always registered (zero without -cascade-margin)
	// so the exposition shape does not depend on backend configuration.
	s.cascadeEnginesRun = s.metrics.Histogram(
		"mvpears_cascade_engines_run", "Auxiliary engines run per cascaded detection.",
		EngineCountBuckets)
	s.cascadeShortCircuits = s.metrics.Counter(
		"mvpears_cascade_short_circuits_total", "Detections answered from a partial similarity vector (auxiliaries skipped).")
	s.cascadeSampledFull = s.metrics.Counter(
		"mvpears_cascade_sampled_full_total", "Deterministic 1-in-N full-ensemble monitoring runs under the cascade.")
	s.inFlight = s.metrics.Gauge(
		"mvpears_in_flight_requests", "Requests currently being handled.")
	s.metrics.GaugeFunc(
		"mvpears_queue_depth", "Detections waiting in the admission queue.",
		func() float64 { return float64(s.pool.QueueLen()) })
	s.queueRejected = s.metrics.Counter(
		"mvpears_queue_rejected_total", "Requests rejected with 429 by the admission queue.")
	s.panicsTotal = s.metrics.Counter(
		"mvpears_handler_panics_total", "Handler panics recovered into 500s.")
	s.metrics.GaugeFunc(
		"mvpears_worker_pool_size", "Configured detection workers.",
		func() float64 { return float64(cfg.Workers) })
	// Verdict-cache series are always registered (zero when disabled) so
	// the exposition shape does not depend on the backend.
	s.metrics.CounterFunc(
		"mvpears_cache_hits_total", "Verdicts served from the cross-request cache.",
		func() uint64 { return s.cacheStats().Hits })
	s.metrics.CounterFunc(
		"mvpears_cache_misses_total", "Verdict-cache lookups that ran a detection.",
		func() uint64 { return s.cacheStats().Misses })
	s.metrics.CounterFunc(
		"mvpears_cache_evictions_total", "Verdicts evicted by entry or byte pressure.",
		func() uint64 { return s.cacheStats().Evictions })
	s.metrics.GaugeFunc(
		"mvpears_cache_resident_bytes", "Approximate bytes held by cached verdicts.",
		func() float64 { return float64(s.cacheStats().Bytes) })
	s.metrics.GaugeFunc(
		"mvpears_cache_entries", "Verdicts currently cached.",
		func() float64 { return float64(s.cacheStats().Entries) })
	s.metrics.CounterFunc(
		"mvpears_singleflight_collapsed_total", "Requests that shared another request's in-flight detection.",
		func() uint64 {
			if s.flight == nil {
				return 0
			}
			return s.flight.Collapsed()
		})

	s.streamSessions = s.metrics.Counter(
		"mvpears_stream_sessions_total", "Streaming sessions opened.")
	s.streamRejected = s.metrics.Counter(
		"mvpears_stream_rejected_total", "Streaming sessions rejected by the session limit.")
	s.streamEvicted = s.metrics.Counter(
		"mvpears_stream_evicted_total", "Streaming sessions evicted after the idle timeout.")
	s.streamWindows = s.metrics.CounterVec(
		"mvpears_stream_windows_total", "Provisional sliding-window verdicts emitted.", "verdict")
	s.streamEarlyExits = s.metrics.Counter(
		"mvpears_stream_early_exits_total", "Streaming sessions flagged adversarial before end-of-stream.")
	s.streamWindowSeconds = s.metrics.Histogram(
		"mvpears_stream_window_seconds", "Per-window evaluation wall time (re-transcription through the ensemble).",
		DefaultLatencyBuckets)
	s.metrics.GaugeFunc(
		"mvpears_stream_sessions_open", "Streaming sessions currently open.",
		func() float64 {
			st := s.be.Load()
			if st == nil || st.stream == nil {
				return 0
			}
			return float64(st.stream.OpenSessions())
		})

	// Cluster + reload series are always registered (zero when the feature
	// is off) so the exposition shape does not depend on configuration.
	s.clusterForwards = s.metrics.CounterVec(
		"mvpears_cluster_forwards_total", "Detect requests forwarded to their owning peer, by outcome.", "outcome")
	s.clusterServed = s.metrics.CounterVec(
		"mvpears_cluster_served_total", "Peer-protocol requests served for other replicas, by operation.", "op")
	s.clusterHedges = s.metrics.Counter(
		"mvpears_cluster_hedges_total", "Hedged duplicate detections dispatched to idle peers.")
	s.clusterHedgeWins = s.metrics.Counter(
		"mvpears_cluster_hedge_wins_total", "Hedged dispatches that answered before the local detection.")
	s.metrics.GaugeFunc(
		"mvpears_cluster_peers_healthy", "Configured peers currently outside the failure backoff.",
		func() float64 {
			if s.node == nil {
				return 0
			}
			return float64(s.node.HealthyPeers())
		})
	s.reloadsTotal = s.metrics.Counter(
		"mvpears_model_reloads_total", "Completed hot model reloads.")
	s.reloadFailures = s.metrics.Counter(
		"mvpears_model_reload_failures_total", "Hot model reloads that failed (old model kept serving).")
	s.clusterRTTSeconds = s.metrics.HistogramVec(
		"mvpears_cluster_rtt_seconds", "Peer RPC round-trip time as the requester sees it.",
		DefaultLatencyBuckets, "peer")
	s.rejectedTotal = s.metrics.CounterVec(
		"mvpears_rejected_total", "Deliberate load-shed rejections across all subsystems, by reason.", "reason")
	// Pre-create the reason children so the exposition shape does not
	// depend on which rejection fired first.
	for _, reason := range []string{rejectQueueFull, rejectStreamSessions, rejectPeerBusy} {
		s.rejectedTotal.With(reason)
	}

	// Detection-quality drift: the monitor exists regardless of whether
	// the backend carries a calibration reference (without one, scores
	// stay 0 and drift never trips). The audit hook is built in; a
	// user-supplied OnDrift chains after it.
	driftCfg := cfg.Drift
	userOnDrift := driftCfg.OnDrift
	driftCfg.OnDrift = func(v drift.Verdict) {
		cfg.Logger.Printf("mvpearsd: drift detected: family=%s score=%.3f threshold=%.3f samples=%d",
			v.Family, v.Score, v.Threshold, v.Samples)
		if cfg.Audit != nil {
			cfg.Audit.WriteDrift(obs.DriftEvent{
				Time:      time.Now(),
				Family:    v.Family,
				Score:     v.Score,
				Threshold: v.Threshold,
				Samples:   v.Samples,
			})
		}
		if userOnDrift != nil {
			userOnDrift(v)
		}
	}
	s.driftMon = drift.New(driftCfg)
	s.probe = drift.NewProbeWatcher(0)
	s.metrics.GaugeVecFunc(
		"mvpears_drift_score", "Divergence of each live detection-quality family from its calibration reference (total-variation distance for distributions, absolute difference for rates).",
		func() []LabeledValue {
			verdicts := s.driftMon.Evaluate()
			out := make([]LabeledValue, len(verdicts))
			for i, v := range verdicts {
				out[i] = LabeledValue{Values: []string{v.Family}, Value: v.Score}
			}
			return out
		}, "family")
	s.metrics.GaugeFunc(
		"mvpears_probe_suspicion", "Fraction of recent detect uploads that were near-duplicates of earlier uploads (mutate-one-sample probing signal).",
		func() float64 { return s.probe.Suspicion() })
	s.metrics.CounterFunc(
		"mvpears_audit_dropped_total", "Audit entries dropped by the sink's retention or write-failure policy.",
		func() uint64 {
			if cfg.Audit == nil {
				return 0
			}
			return cfg.Audit.Dropped()
		})

	// Service-level objectives, evaluated lazily at scrape time from the
	// counters the serving path already maintains.
	s.sloEng = slo.New(slo.Config{Objectives: []slo.Objective{
		{
			Name:   "detect_latency",
			Target: cfg.SLO.Latency,
			Source: func() (bad, total float64) {
				h := s.requestSeconds.With("detect")
				n := float64(h.Count())
				return n - float64(h.CountAtOrBelow(sloDetectLatencyBound)), n
			},
		},
		{
			Name:   "availability",
			Target: cfg.SLO.Availability,
			Source: func() (bad, total float64) {
				return float64(s.sloHTTP5xx.Load()), float64(s.sloHTTPTotal.Load())
			},
		},
		{
			Name:   "verdict_quality",
			Target: cfg.SLO.Quality,
			Source: func() (bad, total float64) {
				return float64(s.sloVerdictsDrifted.Load()), float64(s.sloVerdicts.Load())
			},
		},
	}})
	s.metrics.GaugeVecFunc(
		"mvpears_slo_burn_rate", "Error-budget burn rate per objective and window (1 = spending exactly the budget).",
		func() []LabeledValue {
			st := s.sloEng.Status(time.Now())
			out := make([]LabeledValue, 0, 2*len(st))
			for _, o := range st {
				out = append(out,
					LabeledValue{Values: []string{o.Name, "fast"}, Value: o.FastBurn},
					LabeledValue{Values: []string{o.Name, "slow"}, Value: o.SlowBurn})
			}
			return out
		}, "slo", "window")
	s.metrics.GaugeVecFunc(
		"mvpears_slo_objective", "Configured good-event target per objective.",
		func() []LabeledValue {
			objs := s.sloEng.Objectives()
			out := make([]LabeledValue, len(objs))
			for i, o := range objs {
				out[i] = LabeledValue{Values: []string{o.Name}, Value: o.Target}
			}
			return out
		}, "slo")
	s.metrics.GaugeVecFunc(
		"mvpears_slo_alerting", "1 when both the fast and slow burn windows exceed the alerting burn rate.",
		func() []LabeledValue {
			st := s.sloEng.Status(time.Now())
			out := make([]LabeledValue, len(st))
			for i, o := range st {
				v := 0.0
				if o.Alerting {
					v = 1
				}
				out[i] = LabeledValue{Values: []string{o.Name}, Value: v}
			}
			return out
		}, "slo")

	// Build/model identity gauges: constant 1, identity in the labels.
	// The model gauge reads the live backend state at render time, so a
	// hot reload flips /metrics and /infoz from the same atomic pointer.
	s.buildVersion = resolveBuildVersion()
	s.metrics.GaugeVecFunc(
		"mvpears_build_info", "Build identity of the running daemon (constant 1).",
		func() []LabeledValue {
			return []LabeledValue{{Values: []string{s.buildVersion, runtime.Version()}, Value: 1}}
		}, "version", "go_version")
	s.metrics.GaugeVecFunc(
		"mvpears_model_info", "Identity of the model currently serving (constant 1; empty fingerprint when caching is off).",
		func() []LabeledValue {
			fp := ""
			if st := s.be.Load(); st != nil {
				fp = st.modelFP
			}
			return []LabeledValue{{Values: []string{fp}, Value: 1}}
		}, "fingerprint")

	st, err := s.buildState(cfg.Backend)
	if err != nil {
		return nil, err
	}
	s.be.Store(st)
	if cfg.Cluster != nil {
		if err := s.startCluster(cfg.Cluster); err != nil {
			return nil, err
		}
	}

	s.mux.Handle("/v1/detect", s.instrument("detect", s.handleDetect))
	s.mux.Handle("/v1/detect/batch", s.instrument("detect_batch", s.handleDetectBatch))
	s.mux.Handle("/v1/detect/stream", s.instrument("detect_stream", s.handleDetectStream))
	s.mux.Handle("/v1/detect/ws", s.instrument("detect_ws", s.handleDetectWS))
	s.mux.Handle("/healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.Handle("/readyz", s.instrument("readyz", s.handleReadyz))
	s.mux.Handle("/metrics", s.instrument("metrics", s.handleMetrics))
	s.httpSrv = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
		ErrorLog:          cfg.Logger,
	}
	return s, nil
}

// cacheStats snapshots the verdict-cache counters (zeros when disabled).
func (s *Server) cacheStats() vcache.Stats {
	if s.vc == nil {
		return vcache.Stats{}
	}
	return s.vc.Stats()
}

// Handler exposes the routed handler (for httptest and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on ln until Shutdown. Like net/http, it
// returns http.ErrServerClosed after a graceful shutdown.
func (s *Server) Serve(ln net.Listener) error { return s.httpSrv.Serve(ln) }

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listening on %s: %w", addr, err)
	}
	return s.Serve(ln)
}

// Shutdown drains the server gracefully: readiness flips to 503, the
// listener stops accepting, in-flight requests (and their queued
// detection jobs) run to completion within ctx, then the worker pool is
// closed. Safe to call once per Server.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	// Streaming sessions are cut, not drained: a live microphone never
	// ends on its own, so open sessions fail fast with a stream error
	// event instead of pinning the drain until its deadline.
	if st := s.state(); st.stream != nil {
		st.stream.Close()
	}
	// The peer listener stops first so other replicas fail over to their
	// local path instead of queueing work behind a draining peer.
	if s.node != nil {
		s.clusterCancel()
		s.node.Close()
	}
	err := s.httpSrv.Shutdown(ctx)
	s.pool.Close()
	return err
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// DumpMetrics renders the current metric values (the daemon's final
// flush on shutdown).
func (s *Server) DumpMetrics(w io.Writer) error {
	return s.metrics.Render(w)
}

// MetricFamilies returns the metadata (name, type, help) of every metric
// family the server registers, in registration order — the source of
// truth for the generated metrics reference (see cmd/genmetrics).
func (s *Server) MetricFamilies() []FamilyInfo {
	return s.metrics.Families()
}

// RunUntilSignal serves on ln until one of sigs arrives (or serving fails
// on its own), then drains gracefully within drainTimeout. It returns nil
// after a clean signal-triggered drain.
func (s *Server) RunUntilSignal(ln net.Listener, drainTimeout time.Duration, sigs ...os.Signal) error {
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, sigs...)
	defer signal.Stop(sigCh)

	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case sig := <-sigCh:
		s.cfg.Logger.Printf("mvpearsd: received %v, draining (timeout %v)", sig, drainTimeout)
		//lint:allow ctxflow the drain deadline must outlive every request context: it bounds shutdown itself, not a request
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			return fmt.Errorf("server: draining: %w", err)
		}
		if err := <-serveErr; err != nil && err != http.ErrServerClosed {
			return err
		}
		return nil
	}
}
