package dataset

import (
	"fmt"
	"math/rand"
)

// Pools holds the per-auxiliary similarity-score pools the paper calls
// λBe (benign) and λAk (attack): Benign[j] and AE[j] are the observed
// scores of auxiliary j over the benign and AE datasets respectively.
type Pools struct {
	NumAux int
	Benign [][]float64
	AE     [][]float64
}

// NewPools validates and wraps per-auxiliary score pools.
func NewPools(benign, ae [][]float64) (*Pools, error) {
	if len(benign) == 0 || len(benign) != len(ae) {
		return nil, fmt.Errorf("dataset: pools need matching non-empty benign/AE columns, got %d/%d", len(benign), len(ae))
	}
	for j := range benign {
		if len(benign[j]) == 0 || len(ae[j]) == 0 {
			return nil, fmt.Errorf("dataset: auxiliary %d has an empty pool", j)
		}
	}
	return &Pools{NumAux: len(benign), Benign: benign, AE: ae}, nil
}

// MAEType describes a hypothetical multiple-ASR-effective AE: FoolsAux[j]
// is true when the hypothetical AE also fools auxiliary j (the target is
// always fooled). Table IX's six types for three auxiliaries.
type MAEType struct {
	Name     string
	FoolsAux []bool
}

// StandardMAETypes returns the paper's six types for the auxiliary order
// {DS1, GCS, AT}.
func StandardMAETypes() []MAEType {
	return []MAEType{
		{Name: "Type-1 AE(DS0,DS1)", FoolsAux: []bool{true, false, false}},
		{Name: "Type-2 AE(DS0,GCS)", FoolsAux: []bool{false, true, false}},
		{Name: "Type-3 AE(DS0,AT)", FoolsAux: []bool{false, false, true}},
		{Name: "Type-4 AE(DS0,DS1,GCS)", FoolsAux: []bool{true, true, false}},
		{Name: "Type-5 AE(DS0,DS1,AT)", FoolsAux: []bool{true, false, true}},
		{Name: "Type-6 AE(DS0,GCS,AT)", FoolsAux: []bool{false, true, true}},
	}
}

// FoolsSubsetOf reports whether every auxiliary fooled by t is also fooled
// by other (Λ ⊆ Λ′ in the paper's Table XI analysis).
func (t MAEType) FoolsSubsetOf(other MAEType) bool {
	if len(t.FoolsAux) != len(other.FoolsAux) {
		return false
	}
	for j := range t.FoolsAux {
		if t.FoolsAux[j] && !other.FoolsAux[j] {
			return false
		}
	}
	return true
}

// SynthesizeMAE creates n hypothetical MAE feature vectors of the given
// type: for each auxiliary the score is drawn from the benign pool when
// the hypothetical AE fools that auxiliary (it would transcribe the
// attacker's command, agreeing with the fooled target) and from the AE
// pool otherwise. This is the paper's §V-H construction.
func (p *Pools) SynthesizeMAE(t MAEType, n int, rng *rand.Rand) ([][]float64, error) {
	if len(t.FoolsAux) != p.NumAux {
		return nil, fmt.Errorf("dataset: type %q has %d auxiliaries, pools have %d", t.Name, len(t.FoolsAux), p.NumAux)
	}
	if n <= 0 {
		return nil, fmt.Errorf("dataset: sample count %d must be positive", n)
	}
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		v := make([]float64, p.NumAux)
		for j := 0; j < p.NumAux; j++ {
			if t.FoolsAux[j] {
				v[j] = p.Benign[j][rng.Intn(len(p.Benign[j]))]
			} else {
				v[j] = p.AE[j][rng.Intn(len(p.AE[j]))]
			}
		}
		out[i] = v
	}
	return out, nil
}

// SampleBenignVectors draws n benign feature vectors from the benign
// pools (used to balance MAE training sets when the raw benign dataset is
// smaller than the synthetic AE set).
func (p *Pools) SampleBenignVectors(n int, rng *rand.Rand) ([][]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dataset: sample count %d must be positive", n)
	}
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		v := make([]float64, p.NumAux)
		for j := 0; j < p.NumAux; j++ {
			v[j] = p.Benign[j][rng.Intn(len(p.Benign[j]))]
		}
		out[i] = v
	}
	return out, nil
}
