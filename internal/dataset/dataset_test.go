package dataset

import (
	"math/rand"
	"sync"
	"testing"

	"mvpears/internal/asr"
	"mvpears/internal/speech"
)

var (
	fixtureOnce sync.Once
	fixtureSet  *asr.EngineSet
	fixtureDS   *Dataset
	fixtureErr  error
)

func fixture(t *testing.T) (*asr.EngineSet, *Dataset) {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureSet, fixtureErr = asr.BuildEngines(asr.QuickTrainConfig())
		if fixtureErr != nil {
			return
		}
		fixtureDS, fixtureErr = Build(fixtureSet, TinyScale())
	})
	if fixtureErr != nil {
		t.Fatalf("building fixture: %v", fixtureErr)
	}
	return fixtureSet, fixtureDS
}

func TestBuildCountsAndKinds(t *testing.T) {
	_, ds := fixture(t)
	scale := TinyScale()
	if len(ds.Benign) != scale.Benign {
		t.Fatalf("benign %d, want %d", len(ds.Benign), scale.Benign)
	}
	if len(ds.WhiteBox) != scale.WhiteBox {
		t.Fatalf("white-box %d, want %d", len(ds.WhiteBox), scale.WhiteBox)
	}
	if len(ds.BlackBox) != scale.BlackBox {
		t.Fatalf("black-box %d, want %d", len(ds.BlackBox), scale.BlackBox)
	}
	for _, s := range ds.Benign {
		if s.Kind != KindBenign || s.IsAE() || s.Text == "" {
			t.Fatalf("bad benign sample %+v", s)
		}
	}
	for _, s := range ds.WhiteBox {
		if s.Kind != KindWhiteBox || !s.IsAE() || s.Target == "" {
			t.Fatalf("bad white-box sample %+v", s)
		}
	}
	if got := len(ds.AEs()); got != scale.WhiteBox+scale.BlackBox {
		t.Fatalf("AEs() returned %d", got)
	}
	if got := len(ds.All()); got != scale.Benign+scale.WhiteBox+scale.BlackBox {
		t.Fatalf("All() returned %d", got)
	}
}

func TestAllAEsFoolTargetEngine(t *testing.T) {
	set, ds := fixture(t)
	// The paper: "We have verified that all AEs can successfully fool the
	// target model DS0."
	for _, s := range ds.AEs() {
		hyp, err := set.DS0.Transcribe(s.Clip)
		if err != nil {
			t.Fatal(err)
		}
		if speech.NormalizeText(hyp) != s.Target {
			t.Fatalf("%s AE transcribes as %q, embedded %q", s.Kind, hyp, s.Target)
		}
	}
}

func TestBlackBoxPayloadsAreTwoWords(t *testing.T) {
	_, ds := fixture(t)
	for _, s := range ds.BlackBox {
		if n := len(speech.NormalizeText(s.Target)); n == 0 {
			t.Fatal("empty payload")
		}
	}
}

func TestBuildValidation(t *testing.T) {
	set, _ := fixture(t)
	if _, err := Build(nil, TinyScale()); err == nil {
		t.Fatal("expected error for nil set")
	}
	if _, err := Build(set, Scale{Benign: 0}); err == nil {
		t.Fatal("expected error for zero benign")
	}
}

func TestBuildNonTargeted(t *testing.T) {
	set, _ := fixture(t)
	samples, err := BuildNonTargeted(set, 3, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("got %d samples", len(samples))
	}
	for _, s := range samples {
		if s.Kind != KindNonTargeted || !s.IsAE() {
			t.Fatalf("bad sample kind %v", s.Kind)
		}
	}
	if _, err := BuildNonTargeted(nil, 3, 99); err == nil {
		t.Fatal("expected error for nil set")
	}
	if _, err := BuildNonTargeted(set, 0, 99); err == nil {
		t.Fatal("expected error for zero count")
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindBenign:      "benign",
		KindWhiteBox:    "white-box AE",
		KindBlackBox:    "black-box AE",
		KindNonTargeted: "non-targeted AE",
		Kind(99):        "Kind(99)",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestPoolsValidation(t *testing.T) {
	if _, err := NewPools(nil, nil); err == nil {
		t.Fatal("expected error for empty pools")
	}
	if _, err := NewPools([][]float64{{1}}, [][]float64{{1}, {2}}); err == nil {
		t.Fatal("expected error for mismatched columns")
	}
	if _, err := NewPools([][]float64{{}}, [][]float64{{1}}); err == nil {
		t.Fatal("expected error for empty column")
	}
	p, err := NewPools([][]float64{{0.9}, {0.95}}, [][]float64{{0.3}, {0.4}})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumAux != 2 {
		t.Fatalf("NumAux %d", p.NumAux)
	}
}

func TestStandardMAETypes(t *testing.T) {
	types := StandardMAETypes()
	if len(types) != 6 {
		t.Fatalf("got %d types, want 6", len(types))
	}
	// Types 1-3 fool exactly one auxiliary; 4-6 fool exactly two.
	for i, mt := range types {
		var count int
		for _, f := range mt.FoolsAux {
			if f {
				count++
			}
		}
		want := 1
		if i >= 3 {
			want = 2
		}
		if count != want {
			t.Errorf("%s fools %d auxiliaries, want %d", mt.Name, count, want)
		}
	}
}

func TestFoolsSubsetOf(t *testing.T) {
	types := StandardMAETypes()
	t1 := types[0] // {DS1}
	t4 := types[3] // {DS1, GCS}
	t5 := types[4] // {DS1, AT}
	if !t1.FoolsSubsetOf(t4) {
		t.Fatal("Type-1 must be a subset of Type-4")
	}
	if t4.FoolsSubsetOf(t1) {
		t.Fatal("Type-4 must not be a subset of Type-1")
	}
	if t4.FoolsSubsetOf(t5) {
		t.Fatal("Type-4 and Type-5 are incomparable")
	}
	if !t1.FoolsSubsetOf(t1) {
		t.Fatal("subset must be reflexive")
	}
	other := MAEType{Name: "short", FoolsAux: []bool{true}}
	if t1.FoolsSubsetOf(other) {
		t.Fatal("different lengths are incomparable")
	}
}

func TestSynthesizeMAEDrawsFromCorrectPools(t *testing.T) {
	// Disjoint pool values make the draw source verifiable.
	benign := [][]float64{{0.91, 0.92}, {0.93, 0.94}, {0.95, 0.96}}
	ae := [][]float64{{0.11, 0.12}, {0.13, 0.14}, {0.15, 0.16}}
	pools, err := NewPools(benign, ae)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	t4 := StandardMAETypes()[3] // fools DS1, GCS; not AT
	vecs, err := pools.SynthesizeMAE(t4, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(vecs) != 50 {
		t.Fatalf("got %d vectors", len(vecs))
	}
	for _, v := range vecs {
		if len(v) != 3 {
			t.Fatalf("vector width %d", len(v))
		}
		if v[0] < 0.9 || v[1] < 0.9 {
			t.Fatalf("fooled auxiliaries must draw benign-pool scores: %v", v)
		}
		if v[2] > 0.2 {
			t.Fatalf("unfooled auxiliary must draw AE-pool scores: %v", v)
		}
	}
	// Errors.
	if _, err := pools.SynthesizeMAE(MAEType{FoolsAux: []bool{true}}, 5, rng); err == nil {
		t.Fatal("expected error for auxiliary-count mismatch")
	}
	if _, err := pools.SynthesizeMAE(t4, 0, rng); err == nil {
		t.Fatal("expected error for zero count")
	}
}

func TestSampleBenignVectors(t *testing.T) {
	pools, err := NewPools([][]float64{{0.9}, {0.95}}, [][]float64{{0.3}, {0.4}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	vecs, err := pools.SampleBenignVectors(10, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vecs {
		if v[0] != 0.9 || v[1] != 0.95 {
			t.Fatalf("unexpected benign vector %v", v)
		}
	}
	if _, err := pools.SampleBenignVectors(0, rng); err == nil {
		t.Fatal("expected error for zero count")
	}
}
