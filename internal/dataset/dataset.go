// Package dataset builds the evaluation corpora of the paper: the Benign
// dataset (stand-in for LibriSpeech dev-clean), the AE dataset (white-box
// and black-box adversarial examples, all verified to fool the target
// engine DS0), non-targeted noise AEs, and — for the transferable-AE
// experiments — the similarity-score pools (λBe, λAk) and the synthesized
// hypothetical multiple-ASR-effective (MAE) feature vectors of Table IX.
package dataset

import (
	"fmt"
	"math/rand"

	"mvpears/internal/asr"
	"mvpears/internal/attack"
	"mvpears/internal/audio"
	"mvpears/internal/speech"
)

// Kind labels how a sample was produced.
type Kind int

// Sample kinds.
const (
	KindBenign Kind = iota + 1
	KindWhiteBox
	KindBlackBox
	KindNonTargeted
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindBenign:
		return "benign"
	case KindWhiteBox:
		return "white-box AE"
	case KindBlackBox:
		return "black-box AE"
	case KindNonTargeted:
		return "non-targeted AE"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Sample is one audio clip with its provenance.
type Sample struct {
	Clip   *audio.Clip
	Kind   Kind
	Text   string // reference transcript (benign) or host transcript (AE)
	Target string // embedded command (targeted AEs only)
}

// IsAE reports whether the sample is adversarial.
func (s Sample) IsAE() bool { return s.Kind != KindBenign }

// Dataset is the labelled sample collection used by the experiments.
type Dataset struct {
	Benign   []Sample
	WhiteBox []Sample
	BlackBox []Sample
}

// AEs returns all targeted adversarial samples.
func (d *Dataset) AEs() []Sample {
	out := make([]Sample, 0, len(d.WhiteBox)+len(d.BlackBox))
	out = append(out, d.WhiteBox...)
	out = append(out, d.BlackBox...)
	return out
}

// All returns every sample.
func (d *Dataset) All() []Sample {
	out := make([]Sample, 0, len(d.Benign)+len(d.WhiteBox)+len(d.BlackBox))
	out = append(out, d.Benign...)
	out = append(out, d.AEs()...)
	return out
}

// Scale controls dataset sizes. The paper uses {2400, 1800, 600}; the
// white-box and black-box AE counts here are smaller by default because
// every AE is actually crafted by running the attack until it fools DS0.
type Scale struct {
	Benign   int
	WhiteBox int
	BlackBox int
	Seed     int64
}

// TinyScale is for unit tests.
func TinyScale() Scale { return Scale{Benign: 12, WhiteBox: 4, BlackBox: 3, Seed: 7} }

// SmallScale is for quick experiment runs.
func SmallScale() Scale { return Scale{Benign: 80, WhiteBox: 24, BlackBox: 16, Seed: 7} }

// MediumScale is the default for cmd/experiments.
func MediumScale() Scale { return Scale{Benign: 160, WhiteBox: 60, BlackBox: 30, Seed: 7} }

// FullScale mirrors the paper's 3:2.25:0.75 ratio at a size that is still
// tractable for CPU-only attack generation.
func FullScale() Scale { return Scale{Benign: 320, WhiteBox: 150, BlackBox: 60, Seed: 7} }

// Build synthesizes the benign corpus and crafts the AE datasets against
// the set's target engine (DS0). Every returned AE has been verified to
// fool DS0, matching the paper's dataset protocol.
func Build(set *asr.EngineSet, scale Scale) (*Dataset, error) {
	if set == nil {
		return nil, fmt.Errorf("dataset: nil engine set")
	}
	if scale.Benign <= 0 || scale.WhiteBox < 0 || scale.BlackBox < 0 {
		return nil, fmt.Errorf("dataset: invalid scale %+v", scale)
	}
	synth := speech.NewSynthesizer(set.SampleRate)
	// Benign pool: a corpus seed disjoint from the training seed, plus a
	// generous surplus to host the attacks.
	hostBudget := scale.Benign + 3*(scale.WhiteBox+scale.BlackBox) + 16
	utts, err := speech.GenerateUtterances(synth, hostBudget, scale.Seed+1000)
	if err != nil {
		return nil, fmt.Errorf("dataset: generating corpus: %w", err)
	}
	ds := &Dataset{}
	for _, u := range utts[:scale.Benign] {
		ds.Benign = append(ds.Benign, Sample{Clip: u.Clip, Kind: KindBenign, Text: u.Text})
	}
	hosts := utts[scale.Benign:]
	hostIdx := 0
	nextHost := func(minSamples int) (speech.Utterance, error) {
		for ; hostIdx < len(hosts); hostIdx++ {
			if len(hosts[hostIdx].Clip.Samples) >= minSamples {
				u := hosts[hostIdx]
				hostIdx++
				return u, nil
			}
		}
		return speech.Utterance{}, fmt.Errorf("dataset: ran out of host audio (need more corpus)")
	}

	wbCfg := attack.DefaultWhiteBoxConfig()
	rng := rand.New(rand.NewSource(scale.Seed + 2000))
	for len(ds.WhiteBox) < scale.WhiteBox {
		cmd := speech.MaliciousCommands[rng.Intn(len(speech.MaliciousCommands))]
		// Hosts must be long enough to carry the command comfortably.
		host, err := nextHost(set.SampleRate) // at least 1 s
		if err != nil {
			return nil, err
		}
		res, err := attack.WhiteBox(set.DS0, host.Clip, cmd, wbCfg)
		if err != nil {
			return nil, fmt.Errorf("dataset: white-box attack: %w", err)
		}
		if !res.Success {
			continue // try the next host; the dataset keeps only verified AEs
		}
		ds.WhiteBox = append(ds.WhiteBox, Sample{Clip: res.AE, Kind: KindWhiteBox, Text: host.Text, Target: res.TargetText})
	}

	bbCfg := attack.DefaultBlackBoxConfig()
	for len(ds.BlackBox) < scale.BlackBox {
		cmd := speech.ShortCommands[rng.Intn(len(speech.ShortCommands))]
		host, err := nextHost(set.SampleRate)
		if err != nil {
			return nil, err
		}
		bbCfg.Seed = rng.Int63()
		res, err := attack.BlackBox(set.DS0, host.Clip, cmd, bbCfg)
		if err != nil {
			return nil, fmt.Errorf("dataset: black-box attack: %w", err)
		}
		if !res.Success {
			continue
		}
		ds.BlackBox = append(ds.BlackBox, Sample{Clip: res.AE, Kind: KindBlackBox, Text: host.Text, Target: res.TargetText})
	}
	return ds, nil
}

// BuildNonTargeted produces n noise-based non-targeted AEs from fresh
// benign audio (the paper's §V-J protocol: -6 dB SNR, WER > 80%).
func BuildNonTargeted(set *asr.EngineSet, n int, seed int64) ([]Sample, error) {
	if set == nil || n <= 0 {
		return nil, fmt.Errorf("dataset: invalid non-targeted request")
	}
	synth := speech.NewSynthesizer(set.SampleRate)
	utts, err := speech.GenerateUtterances(synth, n*3, seed+3000)
	if err != nil {
		return nil, err
	}
	cfg := attack.DefaultNonTargetedConfig()
	out := make([]Sample, 0, n)
	for i := 0; i < len(utts) && len(out) < n; i++ {
		cfg.Seed = seed + int64(i)
		res, err := attack.NonTargeted(set.DS0, utts[i].Clip, cfg)
		if err != nil {
			return nil, err
		}
		if !res.Success {
			continue
		}
		out = append(out, Sample{Clip: res.AE, Kind: KindNonTargeted, Text: utts[i].Text})
	}
	if len(out) < n {
		return nil, fmt.Errorf("dataset: only %d/%d non-targeted AEs reached the WER threshold", len(out), n)
	}
	return out, nil
}
