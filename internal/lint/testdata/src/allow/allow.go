// Package allow exercises the //lint:allow escape hatch end to end: a
// justified directive suppresses the finding on its own line or the
// line below; an unjustified or analyzer-less directive is itself a
// finding; a directive further away suppresses nothing.
package allow

// Sentinel compares against an exact sentinel with a reviewed escape on
// the line above the finding: suppressed, no diagnostics.
func Sentinel(x float64) bool {
	//lint:allow floateq zero is the unset sentinel, assigned literally and never computed
	return x == 0
}

// SameLine carries the directive as a trailing comment on the finding's
// own line: also suppressed.
func SameLine(x float64) bool {
	return x != 0 //lint:allow floateq the caller guarantees an exact zero sentinel
}

// Unjustified omits the reason: the directive is flagged AND the
// finding it failed to suppress survives.
func Unjustified(x float64) bool {
	// want+1 `//lint:allow floateq needs a justification`
	//lint:allow floateq
	return x == 0 // want `== on floating-point operands`
}

// Bare names no analyzer at all.
// want+1 `//lint:allow must name an analyzer`
//lint:allow

// TooFar puts the directive two lines above the comparison, outside the
// directive's one-line reach.
func TooFar(x float64) bool {
	//lint:allow floateq the directive only reaches its own line and the next
	y := x
	return y == 0 // want `== on floating-point operands`
}
