// Package purity holds golden cases for the purity analyzer: wall-clock
// reads, global randomness, and map-iteration-ordered output in a
// deterministic pipeline package.
package purity

import (
	"math/rand"
	"sort"
	"time"

	"obs"
)

// Clock reads the wall clock twice on the inference path.
func Clock() time.Duration {
	start := time.Now()      // want `time\.Now in a deterministic pipeline package`
	return time.Since(start) // want `time\.Since in a deterministic pipeline package`
}

// GuardedClock is the sanctioned span-timing shape: the read happens
// only when an obs trace is attached, so untraced requests skip it.
func GuardedClock(tr *obs.Trace) int64 {
	var t time.Time
	if tr != nil {
		t = time.Now()
	}
	return t.UnixNano()
}

// Jitter draws from the global rand source.
func Jitter() int {
	return rand.Intn(10) // want `global rand\.Intn in a deterministic pipeline package`
}

// SeededDraw is the deterministic idiom: an explicitly seeded *rand.Rand.
func SeededDraw(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// Keys records map keys in iteration order.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append records keys in iteration order`
	}
	return keys
}

// SortedKeys is the canonical fix: the collection is absolved by the
// sort that follows it.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Sum accumulates floats in map order; addition is not associative, so
// the random order changes bits.
func Sum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation is not associative`
	}
	return sum
}

// Count accumulates ints, which commute exactly: no finding.
func Count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// ArgMax resolves ties to whichever key the runtime yields first.
func ArgMax(m map[string]int) string {
	best := ""
	top := -1
	for k, v := range m {
		if v > top {
			top, best = v, k // want `assignment to outer variable depends on which key is seen first`
		}
	}
	return best
}

// AnyKey returns after a random prefix of keys.
func AnyKey(m map[string]int) string {
	for k := range m {
		return k // want `return exits after a random prefix of keys`
	}
	return ""
}

// LimitScan breaks out of the map iteration early.
func LimitScan(m map[string]int, stop func(int) bool) {
	for _, v := range m {
		if stop(v) {
			break // want `break exits after a random prefix of keys`
		}
	}
}

// NestedBreak only exits the inner slice loop: the map iteration itself
// always completes, so no finding.
func NestedBreak(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		for _, v := range vs {
			if v < 0 {
				break
			}
			total += v
		}
	}
	return total
}

// SliceAppend ranges over a slice, whose order is defined: no finding.
func SliceAppend(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x*2)
	}
	return out
}
