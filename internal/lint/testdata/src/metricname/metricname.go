// Package metricname holds golden cases for the metricname analyzer.
// Registry mirrors the registration surface of the real serving
// registry; the golden Config points MetricRegistry at it.
package metricname

type (
	// Registry stands in for mvpears/internal/server.Registry.
	Registry     struct{}
	Counter      struct{}
	Gauge        struct{}
	Histogram    struct{}
	CounterVec   struct{}
	HistogramVec struct{}
)

func (r *Registry) Counter(name, help string) *Counter { return nil }

func (r *Registry) Gauge(name, help string) *Gauge { return nil }

func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram { return nil }

func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec { return nil }

func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return nil
}

const goodName = "mvpears_requests_total"

// Register exercises family-name and label-name checks. Only names that
// are compile-time constants in the project grammar pass.
func Register(r *Registry, dynamic string) {
	r.Counter(goodName, "requests served")
	r.Counter("mvpears_cache_hits_total", "cache hits")
	r.Counter("mvpearsd_requests_total", "stale daemon prefix") // want `metric family "mvpearsd_requests_total" does not match`
	r.Gauge("mvpears_Replicas", "uppercase")                    // want `metric family "mvpears_Replicas" does not match`
	r.Counter(dynamic, "computed name")                         // want `metric family name must be a compile-time constant`
	r.Histogram("mvpears_latency_seconds", "latency", []float64{0.1, 1})
	r.CounterVec("mvpears_verdicts_total", "verdicts by engine", "engine", "verdict")
	r.CounterVec("mvpears_verdicts_total", "bad label", "Engine")    // want `metric label "Engine" does not match`
	r.CounterVec("mvpears_verdicts_total", "dynamic label", dynamic) // want `metric label name must be a compile-time constant`
	r.HistogramVec("mvpears_stage_seconds", "per-stage latency", []float64{0.1}, "stage")
	r.HistogramVec("mvpears_stage_seconds", "bad vec label", []float64{0.1}, "stage-name") // want `metric label "stage-name" does not match`
}
