// Package floateq holds golden cases for the floateq analyzer: exact
// equality on floats in verdict-producing code.
package floateq

// Same compares verdict scores bit-for-bit.
func Same(a, b float64) bool {
	return a == b // want `== on floating-point operands`
}

// NonZero uses inequality as a sentinel test; float32 counts too.
func NonZero(x float32) bool {
	return x != 0 // want `!= on floating-point operands`
}

// Close is the sanctioned comparison: an explicit tolerance.
func Close(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// Ints are exact; equality is fine.
func Ints(a, b int) bool {
	return a == b
}

const eps = 1e-9

// ConstFold compares two compile-time constants: the compiler decides
// this, not the FPU, so no finding.
func ConstFold() bool {
	return eps == 1e-9
}
