// Package poolsafe holds golden cases for the poolsafe analyzer: a
// pooled acquire must be released, deferred, or ownership-transferred on
// every exit path.
package poolsafe

import (
	"errors"
	"sync"
)

var errEarly = errors.New("early")

func getBuf() []byte { return nil }

func putBuf(b []byte) {}

func use(int) {}

// LeakOnError forgets the buffer on the early return.
func LeakOnError(fail bool) error {
	buf := getBuf() // want `getBuf is not released on every path`
	if fail {
		return errEarly
	}
	putBuf(buf)
	return nil
}

// DeferRelease is the canonical shape: one defer covers every exit,
// including panics.
func DeferRelease(fail bool) (int, error) {
	buf := getBuf()
	defer putBuf(buf)
	if fail {
		return 0, errEarly
	}
	return len(buf), nil
}

// ReleaseBothPaths releases explicitly on each exit.
func ReleaseBothPaths(fail bool) error {
	buf := getBuf()
	if fail {
		putBuf(buf)
		return errEarly
	}
	putBuf(buf)
	return nil
}

// TransferByReturn hands the obligation to the caller.
func TransferByReturn() []byte {
	buf := getBuf()
	return buf
}

type batch struct {
	bufs [][]byte
}

// TransferByStore parks the buffer in a structure whose owner carries
// the release obligation (the bulk-release pattern).
func (b *batch) add() {
	buf := getBuf()
	b.bufs = append(b.bufs, buf)
}

// LeakOnPanic loses the buffer when the guard fires.
func LeakOnPanic(n int) {
	buf := getBuf() // want `getBuf is not released on every path`
	if n < 0 {
		panic("negative")
	}
	putBuf(buf)
}

// LeakInLoop re-acquires each iteration but skips the release when
// continuing early.
func LeakInLoop(xs []int) {
	for _, x := range xs {
		buf := getBuf() // want `getBuf is not released on every path`
		if x < 0 {
			continue
		}
		putBuf(buf)
	}
}

var pcm = sync.Pool{New: func() any { return []byte(nil) }}

// PoolLeak drops the pooled slice on the error path.
func PoolLeak(fail bool) ([]byte, error) {
	buf := pcm.Get().([]byte) // want `pcm\.Get is not released on every path`
	if fail {
		return nil, errEarly
	}
	out := append([]byte(nil), buf...)
	pcm.Put(buf)
	return out, nil
}

// PoolRoundTrip gets and puts on the single path; len() is a plain use,
// not a transfer.
func PoolRoundTrip() int {
	buf := pcm.Get().([]byte)
	n := len(buf)
	pcm.Put(buf)
	return n
}

// TransferToWorker captures the buffer in a goroutine's closure: the
// worker owns it now.
func TransferToWorker() {
	buf := getBuf()
	go func() {
		putBuf(buf)
	}()
}

func getValue() int { return 42 }

// UsesValue calls a get-prefixed function with no put sibling: not an
// acquisition, so holding it forever is fine.
func UsesValue() int {
	v := getValue()
	return v + 1
}

// AcquireSlot/ReleaseSlot exercise the second recognized prefix pair.
func AcquireSlot() int { return 1 }

func ReleaseSlot(s int) {}

// LeakSlot never releases; falling off the end is the leaking exit.
func LeakSlot() {
	s := AcquireSlot() // want `AcquireSlot is not released on every path`
	use(s)
}

// SlotRoundTrip is the matched pair.
func SlotRoundTrip() {
	s := AcquireSlot()
	use(s)
	ReleaseSlot(s)
}
