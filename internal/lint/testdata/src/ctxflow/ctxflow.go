// Package ctxflow holds golden cases for the ctxflow analyzer: serving
// code must thread request contexts, never re-root or drop them.
package ctxflow

import "context"

// Reroot detaches from the request lifetime.
func Reroot() context.Context {
	return context.Background() // want `context\.Background in a serving package`
}

// Todo is the other spelling of the same detachment.
func Todo() context.Context {
	return context.TODO() // want `context\.TODO in a serving package`
}

// Drop accepts a context and never forwards it: callees run detached.
func Drop(ctx context.Context, n int) int { // want `context parameter ctx is never forwarded`
	return n + 1
}

// Forward is the contract: the context reaches the callee.
func Forward(ctx context.Context, n int) error {
	return work(ctx, n)
}

func work(ctx context.Context, n int) error {
	_ = n
	return ctx.Err()
}

// Ignored declares explicitly that the context is unused; the blank
// name is the reviewed way to opt out.
func Ignored(_ context.Context, n int) int {
	return n
}

// VerdictCtx is Ctx-suffixed but hides the lifetime from the caller.
func VerdictCtx() {} // want `VerdictCtx is Ctx-suffixed but takes no context\.Context`

// ScoreCtx takes the context in the wrong position.
func ScoreCtx(n int, ctx context.Context) error { // want `ScoreCtx is Ctx-suffixed but its first parameter is not context\.Context`
	return work(ctx, n)
}

// DetectCtx is the sanctioned shape: context first, forwarded.
func DetectCtx(ctx context.Context, n int) error {
	return work(ctx, n)
}

// helperCtx is unexported, so the suffix contract does not apply.
func helperCtx() {}

var _ = helperCtx
