// Package obs is a stub of the project's tracing package for the purity
// analyzer's guard-span goldens: the real rule keys off the package NAME
// "obs", so any package spelled that way works as a stand-in.
package obs

// Trace mirrors the real obs.Trace: a non-nil value means the request is
// traced and span timing is on.
type Trace struct {
	Spans int
}
