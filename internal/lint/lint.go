// Package lint implements mvpearslint, the project-invariant static
// analysis suite. MVP-EARS's detection argument rests on contracts that
// ordinary Go tooling cannot see: the deterministic pipeline packages
// must be bit-reproducible (no wall clock, no global randomness, no
// map-iteration-ordered output), every pooled buffer must be released on
// every exit path, request contexts must thread through the serving
// layer instead of being re-rooted, metric families must fit the
// exposition grammar, and float similarity scores must never be compared
// with ==. Each contract is encoded as an Analyzer; the driver in
// cmd/mvpearslint loads the whole module with go/parser + go/types (no
// dependencies beyond the standard library, matching the repo's
// hand-rolled ethos) and runs the suite at `make check` time.
//
// Findings can be suppressed with a reviewed escape hatch: a comment of
// the form
//
//	//lint:allow <analyzer> <justification>
//
// on the offending line or the line directly above it. The justification
// is mandatory; an allow directive without one is itself a finding, so
// escapes stay auditable.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer checks one project invariant over a single type-checked
// package. Analyzers self-select: Run inspects pass.Pkg.ImportPath (via
// the Config path sets) and returns without reporting when the package
// is outside the invariant's scope.
type Analyzer struct {
	Name string // short lower-case identifier, used in //lint:allow
	Doc  string // one-line description shown by mvpearslint -list
	Run  func(*Pass)
}

// A Diagnostic is one finding at one source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// A Pass couples one analyzer run to one loaded package.
type Pass struct {
	Analyzer *Analyzer
	Cfg      *Config
	Pkg      *Package

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Config scopes the analyzers to package sets. The zero value checks
// nothing; DefaultConfig returns the project policy. Golden-file tests
// construct Configs that point at testdata import paths instead.
type Config struct {
	// PurePaths are the deterministic pipeline packages: no wall-clock
	// reads, no global math/rand, no map-iteration-ordered output.
	PurePaths []string
	// ServingPaths are the request-serving packages where
	// context.Background()/context.TODO() are forbidden: every detection
	// runs under a request context with a deadline.
	ServingPaths []string
	// CtxPaths are the packages whose functions must forward any
	// context.Context parameter they accept, and whose *Ctx-suffixed
	// exported entry points must take the context first.
	CtxPaths []string
	// FloatEqPaths are the packages where ==/!= on floating-point
	// operands is forbidden outside test files.
	FloatEqPaths []string
	// MetricRegistry names the metrics registry type as
	// "import/path.TypeName"; calls to its registration methods must use
	// constant, grammar-conforming family and label names.
	MetricRegistry string
}

// DefaultConfig returns the policy enforced on the mvpears module.
func DefaultConfig() *Config {
	return &Config{
		PurePaths: []string{
			"mvpears/internal/dsp",
			"mvpears/internal/nn",
			"mvpears/internal/hmm",
			"mvpears/internal/ctc",
			"mvpears/internal/phonetic",
			"mvpears/internal/similarity",
			"mvpears/internal/classify",
			"mvpears/internal/asr",
			"mvpears/internal/obs/drift",
			"mvpears/internal/obs/slo",
		},
		ServingPaths: []string{
			"mvpears/internal/server",
			"mvpears/internal/stream",
			"mvpears/internal/vcache",
			"mvpears/internal/cluster",
		},
		CtxPaths: []string{
			"mvpears",
			"mvpears/internal/server",
			"mvpears/internal/stream",
			"mvpears/internal/vcache",
			"mvpears/internal/cluster",
			"mvpears/internal/detector",
			"mvpears/internal/asr",
		},
		FloatEqPaths: []string{
			"mvpears/internal/detector",
			"mvpears/internal/classify",
		},
		MetricRegistry: "mvpears/internal/server.Registry",
	}
}

// pathIn reports whether the import path is one of the listed packages.
func pathIn(path string, set []string) bool {
	for _, s := range set {
		if path == s {
			return true
		}
	}
	return false
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		PurityAnalyzer,
		PoolsafeAnalyzer,
		CtxflowAnalyzer,
		MetricnameAnalyzer,
		FloateqAnalyzer,
	}
}

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	analyzer      string
	justification string
	pos           token.Position
}

// allowDirectives scans a file's comments for //lint:allow directives,
// keyed by the line the directive sits on.
func allowDirectives(fset *token.FileSet, f *ast.File) map[int][]allowDirective {
	out := make(map[int][]allowDirective)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:allow")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			fields := strings.Fields(text)
			d := allowDirective{pos: pos}
			if len(fields) > 0 {
				d.analyzer = fields[0]
				d.justification = strings.TrimSpace(strings.Join(fields[1:], " "))
			}
			out[pos.Line] = append(out[pos.Line], d)
		}
	}
	return out
}

// RunAnalyzers runs the given analyzers over one package and returns the
// surviving diagnostics: suppressed findings are dropped, and malformed
// //lint:allow directives (no analyzer name or no justification) are
// reported as findings of the pseudo-analyzer "lint". A directive
// suppresses a finding when it names the finding's analyzer and sits on
// the finding's line or the line directly above it.
func RunAnalyzers(pkg *Package, cfg *Config, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Cfg: cfg, Pkg: pkg}
		a.Run(pass)
		diags = append(diags, pass.diags...)
	}

	// Directive index: filename -> line -> directives.
	allows := make(map[string]map[int][]allowDirective)
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		allows[name] = allowDirectives(pkg.Fset, f)
	}

	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	kept := diags[:0]
	for _, d := range diags {
		if suppressed(d, allows) {
			continue
		}
		kept = append(kept, d)
	}

	// Malformed directives are findings: an escape hatch without a
	// justification (or naming no analyzer) defeats the review trail.
	for _, file := range sortedKeys(allows) {
		for _, line := range sortedIntKeys(allows[file]) {
			for _, dir := range allows[file][line] {
				switch {
				case dir.analyzer == "":
					kept = append(kept, Diagnostic{
						Analyzer: "lint",
						Pos:      dir.pos,
						Message:  "//lint:allow must name an analyzer: //lint:allow <analyzer> <justification>",
					})
				case dir.justification == "" && known[dir.analyzer]:
					kept = append(kept, Diagnostic{
						Analyzer: "lint",
						Pos:      dir.pos,
						Message:  fmt.Sprintf("//lint:allow %s needs a justification", dir.analyzer),
					})
				}
			}
		}
	}

	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept
}

func suppressed(d Diagnostic, allows map[string]map[int][]allowDirective) bool {
	byLine := allows[d.Pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, dir := range byLine[line] {
			if dir.analyzer == d.Analyzer && dir.justification != "" {
				return true
			}
		}
	}
	return false
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedIntKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
