package lint

import (
	"go/ast"
	"strings"
)

// CtxflowAnalyzer enforces the context-threading contract of the serving
// layer. Every detection a replica runs must live under the request's
// context — deadline, cancellation, and the obs trace all ride on it —
// so re-rooting work on context.Background()/context.TODO() silently
// detaches it from admission control and tracing.
//
// Three rules:
//
//  1. no context.Background() or context.TODO() in the serving packages
//     (Config.ServingPaths); deliberate detachments (graceful drain, the
//     singleflight leader) carry a reviewed //lint:allow;
//  2. in Config.CtxPaths, a function that accepts a context.Context must
//     forward it: a named ctx parameter that the body never mentions is
//     a dropped context, which usually means a callee was given the
//     wrong lifetime;
//  3. an exported *Ctx-suffixed entry point must take context.Context as
//     its first parameter — that suffix is the repo's API signal that
//     the caller controls the lifetime.
var CtxflowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc:  "serving paths must thread request contexts, never re-root on Background/TODO",
	Run:  runCtxflow,
}

func runCtxflow(pass *Pass) {
	info := pass.Pkg.Info
	path := pass.Pkg.ImportPath

	if pathIn(path, pass.Cfg.ServingPaths) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn := calleeFunc(info, call); isPkgFunc(fn, "context", "Background", "TODO") {
					pass.Reportf(call.Pos(), "context.%s in a serving package: thread the request context instead (detachments need a reviewed //lint:allow)", fn.Name())
				}
				return true
			})
		}
	}

	if !pathIn(path, pass.Cfg.CtxPaths) {
		return
	}
	declFuncs(pass.Pkg, func(_ *ast.File, fd *ast.FuncDecl) {
		checkCtxParams(pass, fd)
		checkCtxSuffix(pass, fd)
	})
}

// checkCtxParams flags named context.Context parameters that the body
// never references.
func checkCtxParams(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	if fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := info.Defs[name]
			if obj == nil {
				continue
			}
			if !mentionsObj(info, fd.Body, obj) {
				pass.Reportf(name.Pos(), "context parameter %s is never forwarded: callees run detached from the request lifetime", name.Name)
			}
		}
	}
}

// checkCtxSuffix flags exported FooCtx functions whose first parameter
// is not a context.Context.
func checkCtxSuffix(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	if !ast.IsExported(name) || !strings.HasSuffix(name, "Ctx") || name == "Ctx" {
		return
	}
	params := fd.Type.Params
	if params == nil || len(params.List) == 0 {
		pass.Reportf(fd.Name.Pos(), "%s is Ctx-suffixed but takes no context.Context", name)
		return
	}
	tv, ok := pass.Pkg.Info.Types[params.List[0].Type]
	if !ok || !isContextType(tv.Type) {
		pass.Reportf(fd.Name.Pos(), "%s is Ctx-suffixed but its first parameter is not context.Context", name)
	}
}
