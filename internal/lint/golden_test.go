package lint_test

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"mvpears/internal/lint"
)

// The golden tests load one package under testdata/src, run one analyzer
// (or the whole suite) over it, and cross-check the surviving
// diagnostics against `// want` assertions in the source — in both
// directions: every diagnostic must be wanted, every want must fire.
//
// Assertion syntax, on the line the diagnostic lands on:
//
//	expr // want `regexp` `another regexp`
//
// When the diagnostic's line cannot carry a comment (it IS a comment —
// the malformed //lint:allow cases), a whole-line form with an offset
// binds the assertion to a nearby line:
//
//	// want+2 `regexp`   <- expects the diagnostic two lines below
//
// Patterns are unanchored regexps matched against the diagnostic
// message; backquoted or double-quoted Go string syntax both work.

func TestPurityGolden(t *testing.T) {
	runGolden(t, "purity",
		&lint.Config{PurePaths: []string{"purity"}},
		[]*lint.Analyzer{lint.PurityAnalyzer})
}

func TestPoolsafeGolden(t *testing.T) {
	// Poolsafe is not path-scoped: ownership holds everywhere.
	runGolden(t, "poolsafe", &lint.Config{}, []*lint.Analyzer{lint.PoolsafeAnalyzer})
}

func TestCtxflowGolden(t *testing.T) {
	runGolden(t, "ctxflow",
		&lint.Config{ServingPaths: []string{"ctxflow"}, CtxPaths: []string{"ctxflow"}},
		[]*lint.Analyzer{lint.CtxflowAnalyzer})
}

func TestMetricnameGolden(t *testing.T) {
	runGolden(t, "metricname",
		&lint.Config{MetricRegistry: "metricname.Registry"},
		[]*lint.Analyzer{lint.MetricnameAnalyzer})
}

func TestFloateqGolden(t *testing.T) {
	runGolden(t, "floateq",
		&lint.Config{FloatEqPaths: []string{"floateq"}},
		[]*lint.Analyzer{lint.FloateqAnalyzer})
}

func TestAllowGolden(t *testing.T) {
	// The escape hatch runs through RunAnalyzers itself, so this golden
	// exercises the full suite: only floateq is in scope for the package,
	// and the directives steer which of its findings survive.
	runGolden(t, "allow",
		&lint.Config{FloatEqPaths: []string{"allow"}},
		lint.All())
}

// expectation is one want assertion bound to a file line.
type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	hit  bool
}

func runGolden(t *testing.T, dir string, cfg *lint.Config, analyzers []*lint.Analyzer) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	loader := lint.NewLoader(root, "")
	pkg, err := loader.Load(dir)
	if err != nil {
		t.Fatalf("loading testdata/src/%s: %v", dir, err)
	}

	wants := collectWants(t, pkg)
	if len(wants) == 0 {
		t.Fatalf("testdata/src/%s has no // want assertions: the golden would pass vacuously", dir)
	}

	for _, d := range lint.RunAnalyzers(pkg, cfg, analyzers) {
		if !consumeWant(wants, d.Pos.Filename, d.Pos.Line, d.Message) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched %q", filepath.Base(w.file), w.line, w.rx)
		}
	}
}

var (
	wantOffsetRE = regexp.MustCompile(`^[+-][0-9]+`)
	// A backquoted or double-quoted Go string literal.
	wantTokenRE = regexp.MustCompile("`[^`]*`" + `|"(?:[^"\\]|\\.)*"`)
)

// collectWants scans the package's source files for want assertions.
func collectWants(t *testing.T, pkg *lint.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		src, err := os.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(src)
		for line := 1; sc.Scan(); line++ {
			text := sc.Text()
			i := strings.Index(text, "// want")
			if i < 0 {
				continue
			}
			spec := text[i+len("// want"):]
			target := line
			if off := wantOffsetRE.FindString(spec); off != "" {
				n, err := strconv.Atoi(off)
				if err != nil {
					t.Fatalf("%s:%d: bad want offset %q", name, line, off)
				}
				target = line + n
				spec = spec[len(off):]
			}
			toks := wantTokenRE.FindAllString(spec, -1)
			if len(toks) == 0 {
				t.Fatalf("%s:%d: // want carries no quoted pattern", name, line)
			}
			for _, tok := range toks {
				pat, err := strconv.Unquote(tok)
				if err != nil {
					t.Fatalf("%s:%d: unquoting %s: %v", name, line, tok, err)
				}
				rx, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: compiling %q: %v", name, line, pat, err)
				}
				wants = append(wants, &expectation{file: name, line: target, rx: rx})
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		src.Close()
	}
	return wants
}

// consumeWant marks the first unhit assertion matching the diagnostic.
func consumeWant(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.hit && w.file == file && w.line == line && w.rx.MatchString(msg) {
			w.hit = true
			return true
		}
	}
	return false
}
