package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloateqAnalyzer forbids ==/!= on floating-point operands in the
// verdict-producing packages (Config.FloatEqPaths). Similarity scores
// and classifier margins are the product of long float pipelines; exact
// equality on them either encodes a hidden bit-identity assumption or
// a sentinel convention, and both deserve to be explicit — compare with
// a tolerance, restructure around an integer/bool, or carry a reviewed
// //lint:allow stating why exactness is guaranteed. Test files are
// exempt (the parity suites assert bit-identity on purpose), as are
// comparisons where both operands are compile-time constants.
var FloateqAnalyzer = &Analyzer{
	Name: "floateq",
	Doc:  "no ==/!= on float operands in verdict-producing packages outside tests",
	Run:  runFloateq,
}

func runFloateq(pass *Pass) {
	if !pathIn(pass.Pkg.ImportPath, pass.Cfg.FloatEqPaths) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			x, xok := info.Types[be.X]
			y, yok := info.Types[be.Y]
			if !xok || !yok {
				return true
			}
			if x.Value != nil && y.Value != nil {
				return true // constant fold: decided at compile time
			}
			if isFloat(x.Type) || isFloat(y.Type) {
				pass.Reportf(be.OpPos, "%s on floating-point operands: use a tolerance, restructure, or //lint:allow with the exactness argument", be.Op)
			}
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
