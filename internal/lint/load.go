package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File // non-test files, in filename order
	Types      *types.Package
	Info       *types.Info
}

// A Loader parses and type-checks packages from source using only the
// standard library: module-local import paths resolve to directories
// under the module root and are checked recursively; everything else is
// delegated to the compiler's export data (with a from-source fallback,
// for toolchains that ship no export data). This is deliberately a
// hand-rolled, dependency-free stand-in for golang.org/x/tools/go/packages,
// sized to a module with no external requirements.
type Loader struct {
	Fset *token.FileSet

	root       string // absolute module (or testdata src) root
	modulePath string // module import path; "" for testdata roots

	std     types.Importer
	stdSrc  types.Importer // lazy from-source fallback
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader rooted at root. modulePath is the module's
// import path from go.mod; pass "" for golden-test roots, where import
// paths resolve as bare directories under root.
func NewLoader(root, modulePath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		root:       root,
		modulePath: modulePath,
		std:        importer.ForCompiler(fset, "gc", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (root, modulePath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if path, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(path), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// LoadModule loads every package under the loader's root, skipping
// testdata, hidden, and vendor directories. Returned packages are sorted
// by import path.
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.root, dir)
		if err != nil {
			return nil, err
		}
		ip := l.modulePath
		if rel != "." {
			ip = l.modulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.Load(ip)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// dirFor maps an import path to a local directory, or "" when the path
// is not local to this loader's root.
func (l *Loader) dirFor(importPath string) string {
	if l.modulePath != "" {
		if importPath == l.modulePath {
			return l.root
		}
		if rel, ok := strings.CutPrefix(importPath, l.modulePath+"/"); ok {
			return filepath.Join(l.root, filepath.FromSlash(rel))
		}
		return ""
	}
	// Testdata root: a bare single-segment path that exists as a
	// directory is local; everything else is stdlib.
	if strings.Contains(importPath, ".") {
		return ""
	}
	dir := filepath.Join(l.root, filepath.FromSlash(importPath))
	if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
		return dir
	}
	return ""
}

// Load parses and type-checks the package at importPath (memoized).
func (l *Loader) Load(importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	dir := l.dirFor(importPath)
	if dir == "" {
		return nil, fmt.Errorf("lint: %s is not under %s", importPath, l.root)
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importerFunc(l.importPkg),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, typeErrs[0])
	}

	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// importPkg satisfies types.Importer for the checker: local paths load
// recursively from source; the rest come from compiler export data, with
// a from-source fallback.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.dirFor(path) != "" {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	pkg, err := l.std.Import(path)
	if err == nil {
		return pkg, nil
	}
	if l.stdSrc == nil {
		l.stdSrc = importer.ForCompiler(l.Fset, "source", nil)
	}
	return l.stdSrc.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
