package lint

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves the *types.Func a call expression invokes, through
// selectors and parenthesization. Returns nil for builtins, calls of
// function-typed values, and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isPkgFunc reports whether fn is a package-level function (no receiver)
// of the package at pkgPath with one of the given names.
func isPkgFunc(fn *types.Func, pkgPath string, names ...string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// methodOn reports whether fn is a method whose receiver's named base
// type is pkgPath.typeName.
func methodOn(fn *types.Func, pkgPath, typeName string) bool {
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// mentionsObj reports whether node references obj anywhere beneath it.
func mentionsObj(info *types.Info, node ast.Node, obj types.Object) bool {
	if node == nil || obj == nil {
		return false
	}
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// declFuncs yields every function declaration in the package that has a
// body, paired with its file.
func declFuncs(pkg *Package, fn func(file *ast.File, decl *ast.FuncDecl)) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(f, fd)
			}
		}
	}
}
