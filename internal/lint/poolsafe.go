package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PoolsafeAnalyzer enforces the buffer-ownership contract: every acquire
// from a pooled helper must have a matching release reachable on every
// exit of the function. This is the bug class the flight-safe ownership
// work fixed by hand — a pooled PCM buffer leaked on an early error
// return silently degrades the pool until tail latency gives it away.
//
// Two acquisition shapes are recognized:
//
//   - calls to a package-level Get*/Acquire* (or get*/acquire*) function
//     whose package also declares the matching Put*/Release* — e.g.
//     asr.GetFeatureCache / asr.PutFeatureCache, getScratch / putScratch;
//   - (*sync.Pool).Get, matched to a (*sync.Pool).Put on the same
//     receiver expression.
//
// The analysis is intraprocedural and deliberately forgiving about
// ownership transfer: a value that is returned, assigned into another
// variable or structure, captured by a function literal, or handed to a
// goroutine is treated as released here — its new owner carries the
// obligation. What remains flagged is the unambiguous leak: an exit
// path (return, panic, or falling off the end) on which a still-owned
// acquisition has neither a release nor a defer that performs one.
var PoolsafeAnalyzer = &Analyzer{
	Name: "poolsafe",
	Doc:  "every pooled acquire must be released (or ownership-transferred) on every exit path",
	Run:  runPoolsafe,
}

// An acquisition is one tracked acquire site within a function body.
type acquisition struct {
	pos     token.Pos
	label   string
	obj     types.Object                  // variable bound to the acquired value
	release func(call *ast.CallExpr) bool // true if call is the matching release
}

// psState is the set of still-owned acquisitions on the current path.
type psState map[*acquisition]bool

func (s psState) clone() psState {
	c := make(psState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// breakTarget collects path states that jump to just after a breakable
// construct (loop, switch, or select).
type breakTarget struct {
	isLoop bool
	outs   []psState
}

type poolsafeScan struct {
	pass    *Pass
	info    *types.Info
	targets []*breakTarget

	order []*acquisition
	leaks map[*acquisition]string // first leak, as "kind at position"
}

func runPoolsafe(pass *Pass) {
	declFuncs(pass.Pkg, func(_ *ast.File, fd *ast.FuncDecl) {
		analyzePoolsafeBody(pass, fd.Body)
	})
	// Function literals own their bodies too (worker jobs, handlers).
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				analyzePoolsafeBody(pass, fl.Body)
			}
			return true
		})
	}
}

func analyzePoolsafeBody(pass *Pass, body *ast.BlockStmt) {
	s := &poolsafeScan{
		pass:  pass,
		info:  pass.Pkg.Info,
		leaks: make(map[*acquisition]string),
	}
	out, terminated := s.stmts(body.List, make(psState))
	if !terminated {
		s.leakAll(out, body.Rbrace, "function end")
	}
	for _, acq := range s.order {
		if where, ok := s.leaks[acq]; ok {
			pass.Reportf(acq.pos, "%s is not released on every path: leaks at %s (release it, defer the release, or transfer ownership)", acq.label, where)
		}
	}
}

func (s *poolsafeScan) leakAll(live psState, pos token.Pos, kind string) {
	for acq := range live {
		if _, dup := s.leaks[acq]; !dup {
			p := s.pass.Pkg.Fset.Position(pos)
			s.leaks[acq] = kind + " at line " + itoa(p.Line)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// stmts analyzes a statement list, returning the fallthrough state and
// whether every path through the list terminates (returns, panics, or
// jumps away).
func (s *poolsafeScan) stmts(list []ast.Stmt, live psState) (psState, bool) {
	for _, st := range list {
		var terminated bool
		live, terminated = s.stmt(st, live)
		if terminated {
			return live, true
		}
	}
	return live, false
}

func (s *poolsafeScan) stmt(st ast.Stmt, live psState) (psState, bool) {
	switch st := st.(type) {
	case *ast.AssignStmt:
		s.escapes(st.Rhs, live)
		s.trackAcquire(st, live)
		return live, false

	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					s.escapes(vs.Values, live)
				}
			}
		}
		return live, false

	case *ast.ExprStmt:
		call, ok := ast.Unparen(st.X).(*ast.CallExpr)
		if !ok {
			return live, false
		}
		if s.releaseMatch(call, live) {
			return live, false
		}
		if isBuiltinPanic(s.info, call) {
			s.leakAll(live, st.Pos(), "panic")
			return live, true
		}
		s.escapeNode(call, live) // plain args are use; only closure captures escape
		return live, false

	case *ast.DeferStmt:
		s.deferred(st.Call, live)
		return live, false

	case *ast.ReturnStmt:
		s.escapes(st.Results, live)
		s.leakAll(live, st.Pos(), "return")
		return live, true

	case *ast.GoStmt:
		s.escapeNode(st.Call, live)
		return live, false

	case *ast.SendStmt:
		s.escapeNode(st.Value, live)
		return live, false

	case *ast.BlockStmt:
		return s.stmts(st.List, live)

	case *ast.IfStmt:
		if st.Init != nil {
			live, _ = s.stmt(st.Init, live)
		}
		bodyOut, bodyTerm := s.stmts(st.Body.List, live.clone())
		var outs []psState
		if !bodyTerm {
			outs = append(outs, bodyOut)
		}
		if st.Else != nil {
			elseOut, elseTerm := s.stmt(st.Else, live.clone())
			if !elseTerm {
				outs = append(outs, elseOut)
			}
		} else {
			outs = append(outs, live)
		}
		return unionStates(outs), len(outs) == 0

	case *ast.ForStmt:
		if st.Init != nil {
			live, _ = s.stmt(st.Init, live)
		}
		tgt := &breakTarget{isLoop: true}
		s.targets = append(s.targets, tgt)
		bodyOut, bodyTerm := s.stmts(st.Body.List, live.clone())
		s.targets = s.targets[:len(s.targets)-1]
		outs := tgt.outs
		if st.Cond != nil {
			// The loop may run zero times: the pre-loop state falls through.
			outs = append(outs, live)
		}
		if !bodyTerm {
			outs = append(outs, bodyOut)
		}
		if st.Cond == nil && len(tgt.outs) == 0 {
			// for{} with no break never falls through.
			return make(psState), true
		}
		return unionStates(outs), false

	case *ast.RangeStmt:
		tgt := &breakTarget{isLoop: true}
		s.targets = append(s.targets, tgt)
		bodyOut, bodyTerm := s.stmts(st.Body.List, live.clone())
		s.targets = s.targets[:len(s.targets)-1]
		outs := append(tgt.outs, live)
		if !bodyTerm {
			outs = append(outs, bodyOut)
		}
		return unionStates(outs), false

	case *ast.SwitchStmt:
		if st.Init != nil {
			live, _ = s.stmt(st.Init, live)
		}
		return s.caseClauses(st.Body, live, false)

	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			live, _ = s.stmt(st.Init, live)
		}
		return s.caseClauses(st.Body, live, false)

	case *ast.SelectStmt:
		return s.caseClauses(st.Body, live, true)

	case *ast.LabeledStmt:
		return s.stmt(st.Stmt, live)

	case *ast.BranchStmt:
		switch st.Tok {
		case token.BREAK, token.CONTINUE:
			if tgt := s.branchTarget(st.Tok); tgt != nil {
				tgt.outs = append(tgt.outs, live.clone())
			}
			return live, true
		case token.GOTO:
			return live, true
		}
		return live, false

	default:
		return live, false
	}
}

// branchTarget finds the innermost construct a break/continue jumps out
// of: continue targets loops only, break the nearest breakable.
func (s *poolsafeScan) branchTarget(tok token.Token) *breakTarget {
	for i := len(s.targets) - 1; i >= 0; i-- {
		if tok == token.BREAK || s.targets[i].isLoop {
			return s.targets[i]
		}
	}
	return nil
}

func (s *poolsafeScan) caseClauses(body *ast.BlockStmt, live psState, isSelect bool) (psState, bool) {
	tgt := &breakTarget{}
	s.targets = append(s.targets, tgt)
	var outs []psState
	hasDefault := false
	for _, cs := range body.List {
		var stmts []ast.Stmt
		switch cs := cs.(type) {
		case *ast.CaseClause:
			stmts = cs.Body
			if cs.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			stmts = cs.Body
			if cs.Comm == nil {
				hasDefault = true
			} else {
				if st, ok := cs.Comm.(ast.Stmt); ok {
					live2 := live.clone()
					live2, _ = s.stmt(st, live2)
					out, term := s.stmts(stmts, live2)
					if !term {
						outs = append(outs, out)
					}
					continue
				}
			}
		}
		out, term := s.stmts(stmts, live.clone())
		if !term {
			outs = append(outs, out)
		}
	}
	s.targets = s.targets[:len(s.targets)-1]
	outs = append(outs, tgt.outs...)
	if !hasDefault && !isSelect {
		// No case may match: the pre-switch state falls through.
		outs = append(outs, live)
	}
	return unionStates(outs), len(outs) == 0
}

func unionStates(states []psState) psState {
	out := make(psState)
	for _, st := range states {
		for k := range st {
			out[k] = true
		}
	}
	return out
}

// trackAcquire records a new acquisition when the statement binds the
// result of a recognized acquire call to a variable.
func (s *poolsafeScan) trackAcquire(as *ast.AssignStmt, live psState) {
	if len(as.Rhs) != 1 || len(as.Lhs) == 0 {
		return
	}
	rhs := ast.Unparen(as.Rhs[0])
	if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
		rhs = ast.Unparen(ta.X)
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return
	}
	label, release, ok := s.acquireCall(call)
	if !ok {
		return
	}
	id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := s.info.Defs[id]
	if obj == nil {
		obj = s.info.Uses[id]
	}
	if obj == nil {
		return
	}
	acq := &acquisition{pos: call.Pos(), label: label, obj: obj, release: release}
	s.order = append(s.order, acq)
	live[acq] = true
}

// acquireCall classifies a call as an acquisition and builds its release
// matcher.
func (s *poolsafeScan) acquireCall(call *ast.CallExpr) (string, func(*ast.CallExpr) bool, bool) {
	fn := calleeFunc(s.info, call)
	if fn == nil {
		return "", nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", nil, false
	}

	// (*sync.Pool).Get — released by Put on the same receiver expression.
	if methodOn(fn, "sync", "Pool") && fn.Name() == "Get" {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return "", nil, false
		}
		poolKey := types.ExprString(sel.X)
		label := poolKey + ".Get"
		return label, func(c *ast.CallExpr) bool {
			cf := calleeFunc(s.info, c)
			if !methodOn(cf, "sync", "Pool") || cf.Name() != "Put" {
				return false
			}
			csel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr)
			return ok && types.ExprString(csel.X) == poolKey
		}, true
	}

	// Package-level Get*/Acquire* with a sibling Put*/Release*.
	if sig.Recv() != nil || fn.Pkg() == nil || sig.Results().Len() == 0 {
		return "", nil, false
	}
	relName := ""
	for _, p := range [][2]string{{"Get", "Put"}, {"get", "put"}, {"Acquire", "Release"}, {"acquire", "release"}} {
		if rest, ok := strings.CutPrefix(fn.Name(), p[0]); ok && rest != "" {
			relName = p[1] + rest
			break
		}
	}
	if relName == "" {
		return "", nil, false
	}
	relObj, ok := fn.Pkg().Scope().Lookup(relName).(*types.Func)
	if !ok {
		return "", nil, false
	}
	label := fn.Name()
	return label, func(c *ast.CallExpr) bool {
		return calleeFunc(s.info, c) == relObj
	}, true
}

// releaseMatch removes acquisitions the call releases; the call must
// also mention the acquired variable (releasing a different instance of
// the same pool does not discharge this one). Pool Put calls are matched
// by receiver expression, so a bare `pool.Put(x)` of an untracked value
// never discharges someone else's obligation unless x is that value.
func (s *poolsafeScan) releaseMatch(call *ast.CallExpr, live psState) bool {
	matched := false
	for acq := range live {
		if acq.release(call) && callMentions(s.info, call, acq.obj) {
			delete(live, acq)
			matched = true
		}
	}
	return matched
}

func callMentions(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	for _, arg := range call.Args {
		if mentionsObj(info, arg, obj) {
			return true
		}
	}
	return false
}

// deferred handles a defer: a deferred release (directly or inside a
// deferred closure) discharges the obligation on every path, including
// panics.
func (s *poolsafeScan) deferred(call *ast.CallExpr, live psState) {
	for acq := range live {
		if acq.release(call) && callMentions(s.info, call, acq.obj) {
			delete(live, acq)
			continue
		}
		// defer func() { ... release(v) ... }() or any deferred cleanup
		// that references the value: assume it handles it.
		if mentionsObj(s.info, call, acq.obj) {
			delete(live, acq)
		}
	}
}

// escapes drops acquisitions whose variable escapes through the given
// expressions: stored, returned, or captured, ownership moves elsewhere.
func (s *poolsafeScan) escapes(exprs []ast.Expr, live psState) {
	for _, e := range exprs {
		s.escapeNode(e, live)
	}
}

// escapeNode treats any mention of an acquired variable inside n as an
// ownership transfer — except plain use as a call argument, which keeps
// the obligation here. Function literals capture; everything else that
// mentions the variable in a value position stores it.
func (s *poolsafeScan) escapeNode(n ast.Node, live psState) {
	if n == nil || len(live) == 0 {
		return
	}
	for acq := range live {
		if escapesIn(s.info, n, acq.obj) {
			delete(live, acq)
		}
	}
}

// escapesIn reports whether obj is mentioned in n outside of plain call
// arguments: closures that capture it, or any direct value use (return
// operands, RHS of assignments, composite literals, channel sends).
func escapesIn(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	var walk func(n ast.Node, inCallArg bool)
	walk = func(n ast.Node, inCallArg bool) {
		if n == nil || found {
			return
		}
		switch n := n.(type) {
		case *ast.Ident:
			if info.Uses[n] == obj && !inCallArg {
				found = true
			}
		case *ast.FuncLit:
			// Captured by a closure: the closure owns it now.
			if mentionsObj(info, n.Body, obj) {
				found = true
			}
		case *ast.CallExpr:
			walk(n.Fun, inCallArg)
			// Builtin append STORES its arguments into the slice — that
			// is an ownership transfer, unlike an ordinary call that
			// merely uses the value for its duration.
			name, isBuiltin := builtinName(info, n)
			stores := isBuiltin && name == "append"
			for _, a := range n.Args {
				walk(a, !stores)
			}
		case *ast.UnaryExpr:
			walk(n.X, inCallArg)
		case *ast.StarExpr:
			walk(n.X, inCallArg)
		case *ast.ParenExpr:
			walk(n.X, inCallArg)
		case *ast.SelectorExpr:
			walk(n.X, inCallArg)
		case *ast.IndexExpr:
			walk(n.X, inCallArg)
			walk(n.Index, inCallArg)
		case *ast.SliceExpr:
			walk(n.X, inCallArg)
			walk(n.Low, inCallArg)
			walk(n.High, inCallArg)
			walk(n.Max, inCallArg)
		case *ast.BinaryExpr:
			walk(n.X, inCallArg)
			walk(n.Y, inCallArg)
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				walk(el, false) // stored in a structure: escapes
			}
		case *ast.KeyValueExpr:
			walk(n.Key, inCallArg)
			walk(n.Value, inCallArg)
		case *ast.TypeAssertExpr:
			walk(n.X, inCallArg)
		default:
			// Generic fallback for anything not handled above.
			ast.Inspect(n, func(m ast.Node) bool {
				if found {
					return false
				}
				if m == n {
					return true
				}
				walk(m, inCallArg)
				return false
			})
		}
	}
	walk(n, false)
	return found
}

func isBuiltinPanic(info *types.Info, call *ast.CallExpr) bool {
	name, ok := builtinName(info, call)
	return ok && name == "panic"
}

// builtinName returns the name of the builtin a call invokes, if any.
func builtinName(info *types.Info, call *ast.CallExpr) (string, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return "", false
	}
	return id.Name, true
}
