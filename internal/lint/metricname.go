package lint

import (
	"go/ast"
	"go/constant"
	"regexp"
	"strings"
)

// MetricnameAnalyzer enforces the exposition contract of the hand-rolled
// metrics registry. The /metrics endpoint renders families straight into
// the Prometheus text format, so a family name outside the project
// grammar (^mvpears_[a-z0-9_]+$) or a label name outside the identifier
// grammar corrupts the scrape. Names and label keys must be compile-time
// constants: the only dynamic strings on the exposition path are label
// VALUES, which the registry escapes at render time — keeping that true
// is exactly what makes a constant-name check sufficient.
var MetricnameAnalyzer = &Analyzer{
	Name: "metricname",
	Doc:  "metric families must be constant mvpears_* names with constant, identifier-grammar label keys",
	Run:  runMetricname,
}

var (
	metricFamilyRE = regexp.MustCompile(`^mvpears_[a-z0-9_]+$`)
	metricLabelRE  = regexp.MustCompile(`^[a-z_][a-z0-9_]*$`)
)

// registration methods on the registry type, with the index of the
// trailing variadic label-name parameter (-1 when the method takes none).
var metricRegMethods = map[string]int{
	"Counter":      -1,
	"CounterFunc":  -1,
	"CounterVec":   2,
	"Gauge":        -1,
	"GaugeFunc":    -1,
	"GaugeVecFunc": 3,
	"Histogram":    -1,
	"HistogramVec": 3,
}

func runMetricname(pass *Pass) {
	pkgPath, typeName, ok := strings.Cut(pass.Cfg.MetricRegistry, ".")
	if !ok {
		return
	}
	// Registry methods can be called from any package that imports it.
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || !methodOn(fn, pkgPath, typeName) {
				return true
			}
			labelStart, ok := metricRegMethods[fn.Name()]
			if !ok || len(call.Args) == 0 {
				return true
			}

			if name, isConst := constString(pass, call.Args[0]); !isConst {
				pass.Reportf(call.Args[0].Pos(), "metric family name must be a compile-time constant (dynamic names break the exposition grammar)")
			} else if !metricFamilyRE.MatchString(name) {
				pass.Reportf(call.Args[0].Pos(), "metric family %q does not match ^mvpears_[a-z0-9_]+$", name)
			}

			if labelStart >= 0 {
				for _, arg := range call.Args[labelStart:] {
					if label, isConst := constString(pass, arg); !isConst {
						pass.Reportf(arg.Pos(), "metric label name must be a compile-time constant (only label values are escaped at render time)")
					} else if !metricLabelRE.MatchString(label) {
						pass.Reportf(arg.Pos(), "metric label %q does not match ^[a-z_][a-z0-9_]*$", label)
					}
				}
			}
			return true
		})
	}
}

// constString evaluates expr as a compile-time string constant.
func constString(pass *Pass, expr ast.Expr) (string, bool) {
	tv, ok := pass.Pkg.Info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
