package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PurityAnalyzer enforces the bit-identical determinism contract of the
// pipeline packages (Config.PurePaths): streaming finals must equal
// batch verdicts and cache hits must explain identically to misses, so
// nothing on those paths may observe the wall clock, the global
// math/rand source, or Go's randomized map iteration order.
//
// Three rules:
//
//  1. no calls to time.Now, time.Since, or time.Until — except reads
//     guarded by an obs trace check (`if trace != nil { start = time.Now() }`):
//     span timing is the one sanctioned clock consumer, and untraced
//     requests must skip the read entirely;
//  2. no calls to the global top-level functions of math/rand or
//     math/rand/v2 (methods on an explicitly seeded *rand.Rand are fine —
//     that is the deterministic idiom this repo uses for training);
//  3. no map iteration with order-dependent effects: appending inside
//     the loop, floating-point accumulation (non-associative, so the
//     random order changes bits), assigning to variables declared
//     outside the loop (argmax/min: ties resolve to whichever key came
//     first), or exiting the loop early with return/break.
var PurityAnalyzer = &Analyzer{
	Name: "purity",
	Doc:  "forbid wall-clock, global math/rand, and map-iteration-ordered output in the deterministic pipeline packages",
	Run:  runPurity,
}

func runPurity(pass *Pass) {
	if !pathIn(pass.Pkg.ImportPath, pass.Cfg.PurePaths) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		guards := obsGuardSpans(info, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(info, n)
				if isPkgFunc(fn, "time", "Now", "Since", "Until") && !inSpans(n.Pos(), guards) {
					pass.Reportf(n.Pos(), "time.%s in a deterministic pipeline package (wrap in an obs trace guard or move off the inference path)", fn.Name())
				}
				// Top-level math/rand functions draw from the global
				// source; the constructors (New, NewSource, ...) are the
				// sanctioned seeded idiom and methods on *rand.Rand are
				// deterministic given the seed.
				if fn != nil && fn.Pkg() != nil &&
					(fn.Pkg().Path() == "math/rand" || fn.Pkg().Path() == "math/rand/v2") &&
					!strings.HasPrefix(fn.Name(), "New") {
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
						pass.Reportf(n.Pos(), "global rand.%s in a deterministic pipeline package (use an explicitly seeded *rand.Rand)", fn.Name())
					}
				}
			case *ast.RangeStmt:
				checkMapRange(pass, f, n)
			}
			return true
		})
	}
}

// obsGuardSpans returns the source spans of if-bodies guarded by an obs
// value check (for example `if trace != nil { ... }` where trace is an
// *obs.Trace). Clock reads inside such a span are sanctioned: they feed
// span timing and are skipped entirely on untraced requests.
func obsGuardSpans(info *types.Info, f *ast.File) [][2]token.Pos {
	var spans [][2]token.Pos
	ast.Inspect(f, func(n ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if condMentionsObs(info, ifStmt.Cond) {
			spans = append(spans, [2]token.Pos{ifStmt.Body.Pos(), ifStmt.Body.End()})
		}
		return true
	})
	return spans
}

func condMentionsObs(info *types.Info, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		t := obj.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			if p := named.Obj().Pkg(); p != nil && p.Name() == "obs" {
				found = true
			}
		}
		return !found
	})
	return found
}

func inSpans(pos token.Pos, spans [][2]token.Pos) bool {
	for _, s := range spans {
		if pos >= s[0] && pos < s[1] {
			return true
		}
	}
	return false
}

// checkMapRange flags iteration over a map whose body has
// order-dependent effects. At most one finding is reported per range
// statement: once an iteration needs sorting, listing every symptom in
// its body is noise.
func checkMapRange(pass *Pass, file *ast.File, rng *ast.RangeStmt) {
	info := pass.Pkg.Info
	tv, ok := info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}

	reported := false
	report := func(pos token.Pos, what string) {
		if !reported {
			pass.Reportf(pos, "map iteration order leaks into results (%s); iterate over sorted keys", what)
			reported = true
		}
	}

	// Track loop nesting so only break statements that target THIS range
	// are flagged; a break inside a nested for/switch exits that construct.
	var walk func(n ast.Node, loopDepth, switchDepth int)
	walk = func(n ast.Node, loopDepth, switchDepth int) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.ForStmt:
				walkChildren(m, func(c ast.Node) { walk(c, loopDepth+1, switchDepth) })
				return false
			case *ast.RangeStmt:
				walkChildren(m, func(c ast.Node) { walk(c, loopDepth+1, switchDepth) })
				return false
			case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				walkChildren(m, func(c ast.Node) { walk(c, loopDepth, switchDepth+1) })
				return false
			case *ast.FuncLit:
				// A closure's body runs when called, not per iteration;
				// but defining it per iteration and calling it later is
				// exotic enough to ignore here.
				return false
			case *ast.BranchStmt:
				switch m.Tok {
				case token.BREAK:
					if loopDepth == 0 && switchDepth == 0 && m.Label == nil {
						report(m.Pos(), "break exits after a random prefix of keys")
					}
				}
			case *ast.ReturnStmt:
				report(m.Pos(), "return exits after a random prefix of keys")
			case *ast.CallExpr:
				if id, ok := ast.Unparen(m.Fun).(*ast.Ident); ok && id.Name == "append" && len(m.Args) > 0 {
					if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
						// The canonical fix — collect the keys, sort, then
						// use them — appends inside the loop too; a sort
						// of the same slice later in the function absolves
						// the collection.
						if !sortedAfter(info, file, rng, m.Args[0]) {
							report(m.Pos(), "append records keys in iteration order")
						}
					}
				}
			case *ast.AssignStmt:
				checkMapRangeAssign(pass, rng, m, report)
			}
			return true
		})
	}
	walk(rng.Body, 0, 0)
}

// sortedAfter reports whether the slice expression target is passed to a
// sort/slices call after the range statement, within the same enclosing
// function: collecting map keys into a slice that is then sorted is the
// deterministic idiom, not a leak.
func sortedAfter(info *types.Info, file *ast.File, rng *ast.RangeStmt, target ast.Expr) bool {
	want := types.ExprString(target)
	fn := enclosingFunc(file, rng.Pos())
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found || call.Pos() < rng.End() {
			return !found
		}
		cf := calleeFunc(info, call)
		if cf == nil || cf.Pkg() == nil {
			return true
		}
		if p := cf.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			s := types.ExprString(ast.Unparen(arg))
			if s == want || s == "&"+want {
				found = true
			}
		}
		return !found
	})
	return found
}

// enclosingFunc returns the body of the innermost function declaration
// or literal containing pos.
func enclosingFunc(file *ast.File, pos token.Pos) ast.Node {
	var best ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil && n.Body.Pos() <= pos && pos < n.Body.End() {
				best = n.Body
			}
		case *ast.FuncLit:
			if n.Body.Pos() <= pos && pos < n.Body.End() {
				best = n.Body
			}
		}
		return true
	})
	return best
}

// walkChildren visits the direct structural children of a nested
// loop/switch so depth counters can be threaded through.
func walkChildren(n ast.Node, visit func(ast.Node)) {
	switch n := n.(type) {
	case *ast.ForStmt:
		visit(n.Body)
	case *ast.RangeStmt:
		visit(n.Body)
	case *ast.SwitchStmt:
		visit(n.Body)
	case *ast.TypeSwitchStmt:
		visit(n.Body)
	case *ast.SelectStmt:
		visit(n.Body)
	}
}

func checkMapRangeAssign(pass *Pass, rng *ast.RangeStmt, as *ast.AssignStmt, report func(token.Pos, string)) {
	info := pass.Pkg.Info
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range as.Lhs {
			if tv, ok := info.Types[lhs]; ok {
				if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
					report(as.Pos(), "floating-point accumulation is not associative, so order changes bits")
					return
				}
			}
		}
	case token.ASSIGN:
		// x = append(x, k) is the append rule's case (including its
		// sorted-later absolution); don't double-report it here.
		if len(as.Rhs) == 1 {
			if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
					if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
						return
					}
				}
			}
		}
		for _, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue // index/field writes commute across distinct keys
			}
			obj, ok := info.Uses[id].(*types.Var)
			if !ok {
				continue
			}
			// Assigning a variable declared before the range statement:
			// the classic argmax-over-map, where ties resolve to
			// whichever key the runtime happened to yield first.
			if obj.Pos() < rng.Pos() {
				report(as.Pos(), "assignment to outer variable depends on which key is seen first")
				return
			}
		}
	}
}
