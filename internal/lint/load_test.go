package lint_test

import (
	"strings"
	"testing"

	"mvpears/internal/lint"
)

// TestLoadModulePolicyPaths loads the real module through the lint
// loader and checks that every package DefaultConfig names still
// exists — the policy must not rot when packages move.
func TestLoadModulePolicyPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	root, modulePath, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if modulePath != "mvpears" {
		t.Fatalf("module path = %q, want mvpears", modulePath)
	}
	pkgs, err := lint.NewLoader(root, modulePath).LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	have := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		if p.Types == nil || p.Info == nil {
			t.Errorf("%s loaded without type information", p.ImportPath)
		}
		have[p.ImportPath] = true
	}

	cfg := lint.DefaultConfig()
	var policy []string
	policy = append(policy, cfg.PurePaths...)
	policy = append(policy, cfg.ServingPaths...)
	policy = append(policy, cfg.CtxPaths...)
	policy = append(policy, cfg.FloatEqPaths...)
	regPath, _, ok := strings.Cut(cfg.MetricRegistry, ".")
	if !ok {
		t.Fatalf("MetricRegistry %q is not import/path.TypeName", cfg.MetricRegistry)
	}
	policy = append(policy, regPath)
	for _, p := range policy {
		if !have[p] {
			t.Errorf("DefaultConfig names %s, but the module has no such package", p)
		}
	}
}
