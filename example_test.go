package mvpears_test

// Compile-checked godoc examples. They are not executed by `go test`
// (no Output comments) because Build trains models for tens of seconds;
// the test suite covers the same paths with shared fixtures.

import (
	"fmt"
	"log"

	"mvpears"
)

// Example shows the end-to-end flow: build a system, detect benign audio,
// craft an AE against the target engine, detect it.
func Example() {
	sys, err := mvpears.Build(mvpears.WithQuickScale())
	if err != nil {
		log.Fatal(err)
	}
	clip, err := sys.GenerateSpeech("please play the music", 1)
	if err != nil {
		log.Fatal(err)
	}
	det, err := sys.Detect(clip)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("benign flagged:", det.Adversarial)

	host, err := sys.GenerateSpeech("the story was long and cold", 2)
	if err != nil {
		log.Fatal(err)
	}
	ae, err := sys.CraftWhiteBoxAE(host, "unlock the back door")
	if err != nil {
		log.Fatal(err)
	}
	if ae.Success {
		det, err = sys.Detect(ae.AE)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("AE flagged:", det.Adversarial)
	}
}

// ExampleSystem_CalibrateThreshold builds the paper's classifier-free
// unseen-attack detector: calibrated on benign audio only.
func ExampleSystem_CalibrateThreshold() {
	sys, err := mvpears.Build(mvpears.WithQuickScale(), mvpears.WithoutTraining())
	if err != nil {
		log.Fatal(err)
	}
	var benign []*mvpears.Clip
	for i := int64(0); i < 20; i++ {
		clip, err := sys.GenerateSpeech("the house is warm today", i)
		if err != nil {
			log.Fatal(err)
		}
		benign = append(benign, clip)
	}
	td, err := sys.CalibrateThreshold(mvpears.AT, benign, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	flagged, score, err := td.Detect(benign[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("score %.2f flagged %v (threshold %.2f)\n", score, flagged, td.Threshold())
}

// ExampleSystem_TrainProactive arms the detector against hypothetical
// transferable AEs before such attacks exist (the paper's §V-H).
func ExampleSystem_TrainProactive() {
	sys, err := mvpears.Build(mvpears.WithQuickScale())
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.TrainProactive(); err != nil {
		log.Fatal(err)
	}
	// A future AE that fools the target and DS1 (but not GCS/AT) would
	// produce a score vector like this — and is already detected.
	pred, err := sys.Classifier().Predict([]float64{0.96, 0.45, 0.41})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("hypothetical transferable AE flagged:", pred == 1)
}

// ExampleOpen reloads a previously saved system in milliseconds.
func ExampleOpen() {
	sys, err := mvpears.Build(mvpears.WithQuickScale())
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.SaveFile("models/system.gob"); err != nil {
		log.Fatal(err)
	}
	reloaded, err := mvpears.Open("models/system.gob")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(reloaded.AuxiliaryNames())
}
