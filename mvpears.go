// Package mvpears is a from-scratch Go reproduction of MVP-EARS, the
// multiversion-programming-inspired audio adversarial-example detector of
// Zeng et al., "A Multiversion Programming Inspired Approach to Detecting
// Audio Adversarial Examples" (DSN 2019).
//
// The idea: run one *target* ASR and several architecturally diverse
// *auxiliary* ASRs on every input in parallel. Benign audio transcribes
// (almost) identically everywhere; an adversarial example (AE) crafted
// against the target fails to transfer, so at least one auxiliary
// disagrees. Each (target, auxiliary) transcription pair is converted to a
// phonetic encoding and scored with Jaro-Winkler similarity, and the
// similarity vector is classified benign/adversarial by an SVM.
//
// Everything is self-contained and CPU-only: the package trains its own
// diverse ASR engines (two DeepSpeech-style MLP frame classifiers, an
// Elman-RNN engine, a GMM-HMM engine, and a deliberately weak engine) on a
// synthesized speech corpus, and ships real white-box (gradient through
// the MFCC front end) and black-box (genetic + query-based) attacks to
// craft the AEs it detects.
//
// Quick start:
//
//	sys, err := mvpears.Build(mvpears.WithQuickScale())
//	...
//	det, err := sys.Detect(clip)
//	if det.Adversarial { ... }
package mvpears

import (
	"fmt"
	"sync"

	"mvpears/internal/asr"
	"mvpears/internal/audio"
	"mvpears/internal/classify"
	"mvpears/internal/dataset"
	"mvpears/internal/detector"
	"mvpears/internal/speech"
)

// Clip is a mono PCM audio clip (samples in [-1, 1]).
type Clip = audio.Clip

// EngineID names one of the built-in ASR engines.
type EngineID = asr.EngineID

// The built-in engines, named after the systems they stand in for.
const (
	DS0 = asr.DS0 // DeepSpeech v0.1.0 stand-in (the attack target)
	DS1 = asr.DS1 // DeepSpeech v0.1.1 stand-in
	GCS = asr.GCS // Google Cloud Speech stand-in (RNN)
	AT  = asr.AT  // Amazon Transcribe stand-in (GMM-HMM)
	KLD = asr.KLD // weak Kaldi-like engine (for the weak-auxiliary ablation)
	DS2 = asr.DS2 // optional end-to-end CTC engine (WithCTCAuxiliary)
)

// LoadWAV reads a 16-bit mono PCM WAV file.
func LoadWAV(path string) (*Clip, error) { return audio.LoadWAV(path) }

// SaveWAV writes a clip as a 16-bit mono PCM WAV file.
func SaveWAV(path string, c *Clip) error { return audio.SaveWAV(path, c) }

// config collects Build options.
type config struct {
	train       asr.TrainConfig
	scale       dataset.Scale
	auxiliaries []EngineID
	classifier  string
	trainNow    bool
}

// Option customizes Build.
type Option func(*config) error

// WithQuickScale trains small engines on a small corpus and dataset —
// seconds instead of minutes, at reduced accuracy. Intended for demos and
// tests.
func WithQuickScale() Option {
	return func(c *config) error {
		c.train = asr.QuickTrainConfig()
		c.scale = dataset.TinyScale()
		return nil
	}
}

// WithSeed fixes the master seed for engine training and dataset
// generation.
func WithSeed(seed int64) Option {
	return func(c *config) error {
		c.train.Seed = seed
		c.scale.Seed = seed
		return nil
	}
}

// WithAuxiliaries selects which auxiliary engines the detector uses
// (default: DS1, GCS, AT — the paper's three-auxiliary system).
func WithAuxiliaries(ids ...EngineID) Option {
	return func(c *config) error {
		if len(ids) == 0 {
			return fmt.Errorf("mvpears: WithAuxiliaries needs at least one engine")
		}
		for _, id := range ids {
			if id == DS0 {
				return fmt.Errorf("mvpears: DS0 is the target engine and cannot be an auxiliary")
			}
		}
		c.auxiliaries = ids
		return nil
	}
}

// WithClassifier selects the binary classifier: "svm" (default), "knn",
// "forest", "logreg", or "bayes".
func WithClassifier(name string) Option {
	return func(c *config) error {
		switch name {
		case "svm", "knn", "forest", "logreg", "bayes":
			c.classifier = name
			return nil
		default:
			return fmt.Errorf("mvpears: unknown classifier %q (svm, knn, forest, logreg, bayes)", name)
		}
	}
}

// WithCTCAuxiliary additionally trains the end-to-end CTC engine (DS2)
// and appends it to the auxiliary list, giving a four-auxiliary detector.
func WithCTCAuxiliary() Option {
	return func(c *config) error {
		c.train.IncludeCTC = true
		for _, id := range c.auxiliaries {
			if id == DS2 {
				return nil
			}
		}
		c.auxiliaries = append(c.auxiliaries, DS2)
		return nil
	}
}

// WithoutTraining skips crafting the AE dataset and training the
// classifier; the returned System can transcribe and craft AEs, and can be
// trained later with TrainDetector or TrainProactive.
func WithoutTraining() Option {
	return func(c *config) error {
		c.trainNow = false
		return nil
	}
}

// WithDatasetScale overrides the AE/benign dataset sizes used to train
// the detector.
func WithDatasetScale(benign, whiteBox, blackBox int) Option {
	return func(c *config) error {
		if benign <= 0 || whiteBox < 0 || blackBox < 0 {
			return fmt.Errorf("mvpears: invalid dataset scale (%d, %d, %d)", benign, whiteBox, blackBox)
		}
		c.scale.Benign = benign
		c.scale.WhiteBox = whiteBox
		c.scale.BlackBox = blackBox
		return nil
	}
}

func newClassifier(name string) classify.Classifier {
	switch name {
	case "knn":
		return classify.NewKNN()
	case "forest":
		return classify.NewRandomForest()
	case "logreg":
		return classify.NewLogReg()
	case "bayes":
		return classify.NewNaiveBayes()
	default:
		return classify.NewSVM()
	}
}

// System is a trained MVP-EARS deployment: the engine set, the detector
// pipeline, and (after Build with training, the default) a fitted
// classifier.
type System struct {
	engines *asr.EngineSet
	det     *detector.Detector
	data    *dataset.Dataset
	pools   *dataset.Pools

	// fp is the model artifact fingerprint (see ModelFingerprint).
	fpMu sync.Mutex
	fp   string
}

// Build trains the ASR engines, crafts the AE training dataset (unless
// WithoutTraining), and fits the detector. This is CPU-heavy: roughly half
// a minute at quick scale and a few minutes at default scale.
func Build(opts ...Option) (*System, error) {
	cfg := config{
		train:       asr.DefaultTrainConfig(),
		scale:       dataset.SmallScale(),
		auxiliaries: []EngineID{DS1, GCS, AT},
		classifier:  "svm",
		trainNow:    true,
	}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	engines, err := asr.BuildEngines(cfg.train)
	if err != nil {
		return nil, fmt.Errorf("mvpears: training engines: %w", err)
	}
	aux := make([]asr.Recognizer, 0, len(cfg.auxiliaries))
	for _, id := range cfg.auxiliaries {
		rec, err := engines.Get(id)
		if err != nil {
			return nil, err
		}
		aux = append(aux, rec)
	}
	det, err := detector.New(engines.DS0, aux)
	if err != nil {
		return nil, err
	}
	det.Classifier = newClassifier(cfg.classifier)
	sys := &System{engines: engines, det: det}
	if !cfg.trainNow {
		return sys, nil
	}
	data, err := dataset.Build(engines, cfg.scale)
	if err != nil {
		return nil, fmt.Errorf("mvpears: building AE dataset: %w", err)
	}
	sys.data = data
	if err := sys.TrainDetector(); err != nil {
		return nil, err
	}
	return sys, nil
}

// GenerateSpeech synthesizes a benign utterance of the given text with a
// randomly drawn speaker (seeded). Useful for demos and tests; any word
// outside the built-in lexicon is pronounced by grapheme-to-phoneme rules.
func (s *System) GenerateSpeech(text string, seed int64) (*Clip, error) {
	synth := speech.NewSynthesizer(s.engines.SampleRate)
	rng := newRand(seed)
	clip, _, err := synth.SynthesizeSentence(text, speech.RandomSpeaker(rng), rng)
	if err != nil {
		return nil, fmt.Errorf("mvpears: synthesizing %q: %w", text, err)
	}
	return clip, nil
}

// TrainDetector (re)fits the classifier on the System's AE dataset and
// caches the similarity-score pools used by TrainProactive.
func (s *System) TrainDetector() error {
	if s.data == nil {
		return fmt.Errorf("mvpears: no dataset; Build without WithoutTraining, or craft AEs first")
	}
	benignX, _, err := s.det.Features(s.data.Benign)
	if err != nil {
		return err
	}
	aeX, _, err := s.det.Features(s.data.AEs())
	if err != nil {
		return err
	}
	pools, err := detector.ScorePools(benignX, aeX)
	if err != nil {
		return err
	}
	s.pools = pools
	return s.det.Train(benignX, aeX)
}

// TrainProactive refits the classifier on synthesized hypothetical
// transferable-AE (MAE) feature vectors — the paper's comprehensive
// system, able to detect AEs that fool the target plus any strict subset
// of the auxiliaries, before such attacks exist.
func (s *System) TrainProactive() error {
	if s.pools == nil {
		if err := s.TrainDetector(); err != nil {
			return err
		}
	}
	return detector.ProactiveTrain(s.det, s.pools, detector.ComprehensiveConfig())
}
