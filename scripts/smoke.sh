#!/usr/bin/env bash
# Smoke test: boot a real mvpearsd (bootstrapping a quick-scale model),
# probe the public and admin listeners, run one traced detection, and
# assert the observability surface is live — /healthz, /metrics,
# /debug/pprof/, and all five mvpears_stage_seconds pipeline stages.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR=${ADDR:-127.0.0.1:18080}
ADMIN_ADDR=${ADMIN_ADDR:-127.0.0.1:18081}
WORKDIR=$(mktemp -d)
trap 'kill "$DAEMON_PID" 2>/dev/null || true; wait "$DAEMON_PID" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

echo "== build =="
go build -o "$WORKDIR/mvpears" ./cmd/mvpears
go build -o "$WORKDIR/mvpearsd" ./cmd/mvpearsd

echo "== fixture =="
"$WORKDIR/mvpears" synth -text "open the front door" -out "$WORKDIR/clip.wav" -seed 7

echo "== boot =="
"$WORKDIR/mvpearsd" -model "$WORKDIR/model.gob" -bootstrap \
    -addr "$ADDR" -admin-addr "$ADMIN_ADDR" \
    -audit "$WORKDIR/audit.jsonl" >"$WORKDIR/daemon.log" 2>&1 &
DAEMON_PID=$!

for i in $(seq 1 100); do
    if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
    if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
        echo "daemon died during boot:"; cat "$WORKDIR/daemon.log"; exit 1
    fi
    sleep 0.5
done
curl -fsS "http://$ADDR/healthz" >/dev/null || { echo "daemon never became healthy"; cat "$WORKDIR/daemon.log"; exit 1; }

fail() { echo "FAIL: $1"; cat "$WORKDIR/daemon.log"; exit 1; }

echo "== admin listener =="
curl -fsS "http://$ADMIN_ADDR/healthz" >/dev/null || fail "admin /healthz"
curl -fsS "http://$ADMIN_ADDR/debug/pprof/" >/dev/null || fail "admin /debug/pprof/"
curl -fsS "http://$ADMIN_ADDR/infoz" | grep -q '"model_fingerprint"' || fail "admin /infoz missing model fingerprint"

echo "== traced detection =="
VERDICT=$(curl -fsS -X POST --data-binary @"$WORKDIR/clip.wav" \
    -H 'Content-Type: audio/wav' -H 'X-Request-ID: smoke-1' \
    -D "$WORKDIR/headers.txt" \
    "http://$ADDR/v1/detect?explain=1")
echo "$VERDICT" | grep -q '"verdict"' || fail "no verdict in response: $VERDICT"
echo "$VERDICT" | grep -q '"explanation"' || fail "no explanation in ?explain=1 response: $VERDICT"
grep -qi '^x-request-id: smoke-1' "$WORKDIR/headers.txt" || fail "X-Request-ID not echoed"

echo "== streaming session =="
# A chunked, unbuffered upload through the live-audio endpoint: the
# NDJSON response must carry at least one provisional window verdict
# before the final whole-clip verdict.
STREAM=$(curl -fsS --no-buffer -X POST \
    -H 'Content-Type: audio/wav' -H 'Transfer-Encoding: chunked' \
    --data-binary @"$WORKDIR/clip.wav" \
    "http://$ADDR/v1/detect/stream")
echo "$STREAM" | grep -q '"event":"window"' || fail "stream produced no provisional window event: $STREAM"
echo "$STREAM" | grep -q '"event":"final"' || fail "stream produced no final event: $STREAM"
echo "$STREAM" | grep -q '"detection"' || fail "final stream event carries no detection: $STREAM"

echo "== stage metrics =="
METRICS=$(curl -fsS "http://$ADMIN_ADDR/metrics")
for stage in decode transcribe phonetic similarity classify; do
    echo "$METRICS" | grep -q "mvpears_stage_seconds_count{stage=\"$stage\"}" \
        || fail "metrics missing stage \"$stage\""
done
echo "$METRICS" | grep -q 'mvpears_engine_seconds_count{engine="DS0"}' || fail "metrics missing engine seconds"
echo "$METRICS" | grep -q 'mvpears_stream_sessions_total 1' || fail "metrics missing streaming session count"
echo "$METRICS" | grep -q 'mvpears_stream_windows_total' || fail "metrics missing streaming window counts"

echo "smoke OK"
