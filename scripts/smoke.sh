#!/usr/bin/env bash
# Smoke test: boot a real mvpearsd (bootstrapping a quick-scale model),
# probe the public and admin listeners, run one traced detection, and
# assert the observability surface is live — /healthz, /metrics,
# /debug/pprof/, and all five mvpears_stage_seconds pipeline stages.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR=${ADDR:-127.0.0.1:18080}
ADMIN_ADDR=${ADMIN_ADDR:-127.0.0.1:18081}
WORKDIR=$(mktemp -d)
ALL_PIDS=""
cleanup() {
    for pid in $ALL_PIDS; do kill "$pid" 2>/dev/null || true; done
    for pid in $ALL_PIDS; do wait "$pid" 2>/dev/null || true; done
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

echo "== build =="
go build -o "$WORKDIR/mvpears" ./cmd/mvpears
go build -o "$WORKDIR/mvpearsd" ./cmd/mvpearsd

echo "== fixture =="
"$WORKDIR/mvpears" synth -text "open the front door" -out "$WORKDIR/clip.wav" -seed 7

echo "== boot =="
"$WORKDIR/mvpearsd" -model "$WORKDIR/model.gob" -bootstrap \
    -addr "$ADDR" -admin-addr "$ADMIN_ADDR" \
    -audit "$WORKDIR/audit.jsonl" >"$WORKDIR/daemon.log" 2>&1 &
DAEMON_PID=$!
ALL_PIDS="$DAEMON_PID"

for i in $(seq 1 100); do
    if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
    if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
        echo "daemon died during boot:"; cat "$WORKDIR/daemon.log"; exit 1
    fi
    sleep 0.5
done
curl -fsS "http://$ADDR/healthz" >/dev/null || { echo "daemon never became healthy"; cat "$WORKDIR/daemon.log"; exit 1; }

fail() { echo "FAIL: $1"; cat "$WORKDIR"/*.log 2>/dev/null; exit 1; }

echo "== admin listener =="
curl -fsS "http://$ADMIN_ADDR/healthz" >/dev/null || fail "admin /healthz"
curl -fsS "http://$ADMIN_ADDR/debug/pprof/" >/dev/null || fail "admin /debug/pprof/"
curl -fsS "http://$ADMIN_ADDR/infoz" | grep -q '"model_fingerprint"' || fail "admin /infoz missing model fingerprint"

echo "== traced detection =="
VERDICT=$(curl -fsS -X POST --data-binary @"$WORKDIR/clip.wav" \
    -H 'Content-Type: audio/wav' -H 'X-Request-ID: smoke-1' \
    -D "$WORKDIR/headers.txt" \
    "http://$ADDR/v1/detect?explain=1")
echo "$VERDICT" | grep -q '"verdict"' || fail "no verdict in response: $VERDICT"
echo "$VERDICT" | grep -q '"explanation"' || fail "no explanation in ?explain=1 response: $VERDICT"
grep -qi '^x-request-id: smoke-1' "$WORKDIR/headers.txt" || fail "X-Request-ID not echoed"

echo "== streaming session =="
# A chunked, unbuffered upload through the live-audio endpoint: the
# NDJSON response must carry at least one provisional window verdict
# before the final whole-clip verdict.
STREAM=$(curl -fsS --no-buffer -X POST \
    -H 'Content-Type: audio/wav' -H 'Transfer-Encoding: chunked' \
    --data-binary @"$WORKDIR/clip.wav" \
    "http://$ADDR/v1/detect/stream")
echo "$STREAM" | grep -q '"event":"window"' || fail "stream produced no provisional window event: $STREAM"
echo "$STREAM" | grep -q '"event":"final"' || fail "stream produced no final event: $STREAM"
echo "$STREAM" | grep -q '"detection"' || fail "final stream event carries no detection: $STREAM"

echo "== stage metrics =="
METRICS=$(curl -fsS "http://$ADMIN_ADDR/metrics")
for stage in decode transcribe phonetic similarity classify; do
    echo "$METRICS" | grep -q "mvpears_stage_seconds_count{stage=\"$stage\"}" \
        || fail "metrics missing stage \"$stage\""
done
echo "$METRICS" | grep -q 'mvpears_engine_seconds_count{engine="DS0"}' || fail "metrics missing engine seconds"
echo "$METRICS" | grep -q 'mvpears_stream_sessions_total 1' || fail "metrics missing streaming session count"
echo "$METRICS" | grep -q 'mvpears_stream_windows_total' || fail "metrics missing streaming window counts"

echo "== cluster: boot 3 replicas =="
# Three replicas share the already-bootstrapped model artifact (same
# fingerprint) and a full peer mesh over the cluster protocol.
PUB_A=127.0.0.1:18084; PUB_B=127.0.0.1:18085; PUB_C=127.0.0.1:18086
ADM_C=127.0.0.1:18087
CL_A=127.0.0.1:19190;  CL_B=127.0.0.1:19191;  CL_C=127.0.0.1:19192

start_replica() { # name pub-addr cluster-addr peers extra-args...
    local name=$1 pub=$2 cl=$3 prs=$4; shift 4
    "$WORKDIR/mvpearsd" -model "$WORKDIR/model.gob" -addr "$pub" \
        -cluster-addr "$cl" -peers "$prs" "$@" \
        >"$WORKDIR/$name.log" 2>&1 &
    ALL_PIDS="$ALL_PIDS $!"
}
start_replica replicaA "$PUB_A" "$CL_A" "$CL_B,$CL_C"
start_replica replicaB "$PUB_B" "$CL_B" "$CL_A,$CL_C"
start_replica replicaC "$PUB_C" "$CL_C" "$CL_A,$CL_B" -admin-addr "$ADM_C"

for pub in "$PUB_A" "$PUB_B" "$PUB_C"; do
    for i in $(seq 1 100); do
        if curl -fsS "http://$pub/healthz" >/dev/null 2>&1; then break; fi
        sleep 0.2
    done
    curl -fsS "http://$pub/healthz" >/dev/null || {
        echo "replica on $pub never became healthy"
        cat "$WORKDIR"/replica?.log; exit 1
    }
done

echo "== cluster: remote verdict-cache hit =="
# Detect on A, repeat on B: when the key's owner is A or C, B's answer
# is a remote hit off the distributed cache ("remote":true). Ring
# placement depends on content, so scan a few seeds; a seed whose key B
# itself owns legitimately detects locally and is skipped.
REMOTE_JSON=""
for seed in 11 12 13 14 15 16 17 18; do
    "$WORKDIR/mvpears" synth -text "unlock the back gate" -out "$WORKDIR/cl.wav" -seed "$seed"
    curl -fsS -X POST --data-binary @"$WORKDIR/cl.wav" -H 'Content-Type: audio/wav' \
        "http://$PUB_A/v1/detect" >/dev/null || fail "cluster detect on A (seed $seed)"
    R2=$(curl -fsS -X POST --data-binary @"$WORKDIR/cl.wav" -H 'Content-Type: audio/wav' \
        "http://$PUB_B/v1/detect") || fail "cluster detect on B (seed $seed)"
    if echo "$R2" | grep -q '"remote":true'; then REMOTE_JSON=$R2; break; fi
done
[ -n "$REMOTE_JSON" ] || fail "no remote cache hit on B in 8 seeds (cluster tier dead?)"
echo "$REMOTE_JSON" | grep -q '"cached":true' || fail "remote answer not marked cached: $REMOTE_JSON"
curl -fsS "http://$PUB_B/metrics" | grep -q 'mvpears_cluster_forwards_total{outcome="hit"}' \
    || fail "B's metrics missing the cluster forward-hit count"

echo "== cluster: hot reload under load =="
# Hammer C while its model hot-reloads; every request must answer 200.
( for i in $(seq 1 40); do
      curl -s -o /dev/null -w '%{http_code}\n' -X POST \
          --data-binary @"$WORKDIR/clip.wav" -H 'Content-Type: audio/wav' \
          "http://$PUB_C/v1/detect" || echo ERR
  done ) >"$WORKDIR/reload_codes.txt" &
LOAD_PID=$!
sleep 0.3
curl -fsS -X POST "http://$ADM_C/reloadz" | grep -q '"reloaded":true' || fail "POST /reloadz on C"
wait "$LOAD_PID"
CODES=$(sort -u "$WORKDIR/reload_codes.txt")
[ "$CODES" = "200" ] || fail "dropped requests during hot reload (status set: $CODES)"
[ "$(wc -l <"$WORKDIR/reload_codes.txt")" -eq 40 ] || fail "reload load loop lost requests"
curl -fsS "http://$ADM_C/infoz" | grep -q '"reloads":1' || fail "C's /infoz does not count the reload"

echo "== fleet observability =="
# The operator status page and the fleet metric families, probed on a
# replica that is part of the mesh and has served fresh detections.
STATUSZ=$(curl -fsS "http://$ADM_C/statusz") || fail "GET /statusz on C"
for want in "build:" "model:" "slo:" "drift:" "probe:" "ring:"; do
    echo "$STATUSZ" | grep -q "$want" || fail "/statusz missing \"$want\" section: $STATUSZ"
done
echo "$STATUSZ" | grep -q "detect_latency" || fail "/statusz missing the latency objective"
METRICS_C=$(curl -fsS "http://$ADM_C/metrics")
echo "$METRICS_C" | grep -q 'mvpears_drift_score{family="engine:' \
    || fail "C's metrics missing per-engine drift scores"
echo "$METRICS_C" | grep -q 'mvpears_slo_burn_rate{slo="detect_latency",window="fast"}' \
    || fail "C's metrics missing SLO burn rates"
echo "$METRICS_C" | grep -q 'mvpears_slo_alerting{slo="availability"} 0' \
    || fail "C alerting on availability during a clean smoke run"
echo "$METRICS_C" | grep -q 'mvpears_build_info{' || fail "C's metrics missing build identity"
echo "$METRICS_C" | grep -q 'mvpears_model_info{fingerprint=' || fail "C's metrics missing model identity"
echo "$METRICS_C" | grep -q 'mvpears_rejected_total{reason="queue_full"} 0' \
    || fail "C's metrics missing pre-created rejection reasons"
# The requester side of the earlier remote hit timed the peer round trip.
curl -fsS "http://$PUB_B/metrics" | grep -q 'mvpears_cluster_rtt_seconds_count{peer="' \
    || fail "B's metrics missing the per-peer RTT histogram after a forward"

echo "smoke OK"
