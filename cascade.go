package mvpears

import (
	"fmt"
	"time"

	"mvpears/internal/asr"
	"mvpears/internal/detector"
)

// Serving-path acceleration: cascaded engine scheduling and int8
// quantized inference. Both are pure inference-time toggles — they derive
// state from the trained model at enable time, persist nothing, and leave
// ModelFingerprint (and therefore verdict-cache keys) unchanged.

// CascadeDecision reports how the cascade scheduler handled one input:
// which auxiliary engines ran, which were skipped, and why.
type CascadeDecision struct {
	// ShortCircuit is true when the benign margin allowed skipping
	// auxiliaries; SampledFull when this was a deterministic 1-in-N
	// full-ensemble monitoring run.
	ShortCircuit bool
	SampledFull  bool
	// EnginesRun / EnginesSkipped name auxiliary engines in evaluation
	// (cheapest-first) order; the target always runs.
	EnginesRun     []string
	EnginesSkipped []string
	// Margin is the benign-confidence margin in effect and FirstScore the
	// cheapest auxiliary's similarity score it was checked against.
	Margin     float64
	FirstScore float64
	// Imputed marks Scores dimensions (configured auxiliary order) that
	// hold benign fill means instead of measured similarities.
	Imputed []bool
}

func fromCascadeInfo(info *detector.CascadeInfo) *CascadeDecision {
	if info == nil {
		return nil
	}
	return &CascadeDecision{
		ShortCircuit:   info.ShortCircuit,
		SampledFull:    info.SampledFull,
		EnginesRun:     info.EnginesRun,
		EnginesSkipped: info.EnginesSkipped,
		Margin:         info.Margin,
		FirstScore:     info.FirstScore,
		Imputed:        info.Imputed,
	}
}

// EnableQuantized switches every neural engine that passes the
// transcription-parity gate to int8 batched inference (see
// asr.EnableQuantized). Returns the engines enabled and those that failed
// parity and kept float64. Quantized weights are derived in memory and
// never saved; the model fingerprint is unchanged.
func (s *System) EnableQuantized() (enabled, fellBack []EngineID, err error) {
	return s.engines.EnableQuantized(nil)
}

// DisableQuantized restores float64 inference everywhere.
func (s *System) DisableQuantized() { s.engines.DisableQuantized() }

// EnableCascade attaches the cascade scheduler to the detector. margin 0
// auto-calibrates from the training features (the no-flip construction:
// strictly above the cheapest-auxiliary score of every training vector
// the classifier flags adversarial); margin > 1 disables short-circuits.
// sampleEvery runs the full ensemble on every Nth request for
// distribution monitoring (0 = never). Engine costs are measured with a
// boot-time calibration pass.
func (s *System) EnableCascade(margin float64, sampleEvery int) error {
	if s.pools == nil {
		return fmt.Errorf("mvpears: cascade needs a trained detector (training features unavailable)")
	}
	costs, err := asr.CalibrateCosts(s.det.Auxiliaries, s.engines.SampleRate)
	if err != nil {
		return fmt.Errorf("mvpears: calibrating engine costs: %w", err)
	}
	cfg := detector.CascadeConfig{
		Margin:      margin,
		SampleEvery: sampleEvery,
		Costs:       costs,
	}
	benignX := columnsToRows(s.pools.Benign)
	aeX := columnsToRows(s.pools.AE)
	if err := s.det.EnableCascade(cfg, benignX, aeX); err != nil {
		return fmt.Errorf("mvpears: %w", err)
	}
	return nil
}

// DisableCascade detaches the scheduler; detection reverts to the
// unconditional full ensemble.
func (s *System) DisableCascade() { s.det.DisableCascade() }

// CascadeStatus describes the active scheduler, for /healthz-style
// introspection.
type CascadeStatus struct {
	Enabled     bool
	Margin      float64
	SampleEvery int
	// EngineOrder is the auxiliary evaluation order, cheapest first.
	EngineOrder []string
	// EngineCosts are the boot-time calibrated costs per auxiliary.
	EngineCosts map[string]time.Duration
}

// Cascade returns the current scheduler status.
func (s *System) Cascade() CascadeStatus {
	c := s.det.Cascade
	if c == nil {
		return CascadeStatus{}
	}
	order := make([]string, 0, len(s.det.Auxiliaries))
	for _, i := range c.Order() {
		order = append(order, s.det.Auxiliaries[i].Name())
	}
	return CascadeStatus{
		Enabled:     true,
		Margin:      c.Margin(),
		SampleEvery: c.SampleEvery(),
		EngineOrder: order,
		EngineCosts: c.Costs(),
	}
}

// QuantizedEngines lists the engines currently running int8 inference.
func (s *System) QuantizedEngines() []EngineID {
	return s.engines.QuantizedEngines()
}
