module mvpears

go 1.22
