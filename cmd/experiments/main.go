// Command experiments regenerates every table and figure of the paper's
// evaluation section (§V) plus the §III-B transferability study and the
// weak-auxiliary ablation.
//
// Usage:
//
//	experiments                      # medium scale, full suite
//	experiments -scale quick         # fast smoke run
//	experiments -scale full          # largest dataset (slow: every AE is crafted)
//	experiments -only table5,fig4    # subset of experiments
//	experiments -out results.txt     # also write the report to a file
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mvpears/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	scale := fs.String("scale", "medium", "quick, medium, or full")
	only := fs.String("only", "", "comma-separated experiment ids (default: all)")
	out := fs.String("out", "", "also write the report to this file")
	jsonOut := fs.String("json", "", "also write a machine-readable JSON report to this file")
	list := fs.Bool("list", false, "list experiment ids and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return nil
	}
	var cfg experiments.Config
	switch *scale {
	case "quick":
		cfg = experiments.QuickConfig()
	case "medium":
		cfg = experiments.DefaultConfig()
	case "full":
		cfg = experiments.FullConfig()
	default:
		return fmt.Errorf("unknown scale %q (quick, medium, full)", *scale)
	}
	logf := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, "[%s] %s\n", time.Now().Format("15:04:05"), fmt.Sprintf(format, a...))
	}
	start := time.Now()
	env, err := experiments.BuildEnv(cfg, logf)
	if err != nil {
		return err
	}
	logf("environment ready in %v", time.Since(start).Round(time.Second))

	var results []*experiments.Result
	if *only == "" {
		results, err = experiments.RunAll(env)
		if err != nil {
			return err
		}
	} else {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			runner, err := experiments.Get(id)
			if err != nil {
				return err
			}
			logf("running %s...", id)
			res, err := runner(env)
			if err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			results = append(results, res)
		}
	}
	var report strings.Builder
	for _, r := range results {
		report.WriteString(r.String())
		report.WriteByte('\n')
	}
	fmt.Print(report.String())
	if *out != "" {
		if err := os.WriteFile(*out, []byte(report.String()), 0o644); err != nil {
			return fmt.Errorf("writing %s: %w", *out, err)
		}
		logf("report written to %s", *out)
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return fmt.Errorf("creating %s: %w", *jsonOut, err)
		}
		if err := experiments.WriteJSON(f, results); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("closing %s: %w", *jsonOut, err)
		}
		logf("JSON report written to %s", *jsonOut)
	}
	logf("total time %v", time.Since(start).Round(time.Second))
	return nil
}
