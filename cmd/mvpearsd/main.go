// Command mvpearsd serves a trained MVP-EARS system over HTTP.
//
// Usage:
//
//	mvpearsd -model model.gob [-addr 127.0.0.1:8080] [-workers N] [-queue N]
//	         [-max-upload 16777216] [-timeout 30s] [-drain 30s] [-bootstrap]
//	         [-cache-entries 4096] [-cache-bytes 67108864] [-cache-off]
//	         [-admin-addr 127.0.0.1:8081] [-log-sample 1.0] [-slow 1s]
//	         [-access-log] [-audit audit.jsonl]
//	         [-audit-rotate-bytes 67108864] [-audit-retain-bytes 268435456]
//	         [-drift-threshold 0.25] [-drift-window 512]
//	         [-slo-latency-target 0.99] [-slo-availability-target 0.999]
//	         [-slo-quality-target 0.99]
//	         [-cascade-margin -1] [-cascade-sample 16] [-quantized]
//	         [-stream] [-stream-window 1s] [-stream-hop 250ms]
//	         [-stream-max-sessions 64] [-stream-idle-timeout 30s]
//	         [-cluster-addr 127.0.0.1:9090] [-peers host:9090,host2:9090]
//	         [-hedge-after 0] [-reload]
//
// The daemon boots from a persisted model artifact (written by
// `mvpears detect -model` or by -bootstrap) — it never retrains at
// startup. It exposes:
//
//	POST /v1/detect        one WAV body -> verdict JSON (?explain=1 adds
//	                       per-engine phonetic evidence)
//	POST /v1/detect/batch  multipart WAVs -> per-file verdicts
//	POST /v1/detect/stream chunked WAV in -> NDJSON sliding-window
//	                       verdicts out, with early-exit flagging
//	GET  /v1/detect/ws     WebSocket: PCM16 frames in, verdict events out
//	GET  /healthz          liveness
//	GET  /readyz           readiness (503 while draining)
//	GET  /metrics          Prometheus text format
//
// With -admin-addr a second, operator-only listener serves /debug/pprof/,
// /infoz (build + model identity), /statusz (a plain-text operator page:
// build and model identity, SLO burn rates, drift verdicts, probe
// suspicion), /metrics and /healthz — profiling never shares the public
// serving port.
//
// Every response carries an X-Request-ID header (propagated from the
// request when present); with -access-log each request is logged as one
// JSON line (sampled by -log-sample; requests slower than -slow always
// log, with full span detail). -audit appends every adversarial verdict
// and every drift episode to a JSONL file, rotated into gzipped segments
// at -audit-rotate-bytes and pruned oldest-first past -audit-retain-bytes
// (drops are counted in mvpears_audit_dropped_total, never blocking
// serving).
//
// The daemon continuously compares its live per-engine score
// distributions against the calibration-time reference shipped inside
// the model artifact (total-variation distance over fixed histogram
// sketches, exported as mvpears_drift_score); a family past
// -drift-threshold emits a structured drift audit event and marks
// verdicts as degraded for the quality SLO. Three built-in SLOs
// (detect latency, availability, verdict quality) are tracked with
// fast/slow multi-window burn rates (mvpears_slo_burn_rate) and an
// alerting bit that only trips when both windows burn hot.
//
// The cache-miss path can be accelerated without retraining or changing
// the persisted model: -quantized switches the neural engines to int8
// batched inference behind a boot-time transcription-parity gate (an
// engine that fails parity keeps float64), and -cascade-margin attaches
// the cascaded engine scheduler, which runs auxiliaries cheapest-first
// and answers confidently benign clips from a partial similarity vector
// (0 auto-calibrates the no-flip margin from the training features;
// negative keeps the cascade off). -cascade-sample N still runs the full
// ensemble on every Nth cascaded request for distribution monitoring.
// Neither toggle changes the model fingerprint, so verdict-cache keys
// are shared with unaccelerated daemons of the same model.
//
// With -cluster-addr and -peers, N replicas share the content-addressed
// verdict cache: consistent hashing on the cache key decides which
// replica owns each clip, local misses forward to the owner (remote hits
// cost a fraction of a detection, and fleet-wide duplicate storms
// collapse to one detection at the owner), and slow self-owned misses
// hedge a duplicate dispatch to an idle peer. Any peer failure degrades
// to local detection — a request is never failed because a peer is down.
//
// With -reload (default on), SIGHUP — or POST /reloadz on the admin
// listener — re-opens the -model artifact and swaps it in with zero
// downtime: in-flight requests finish on the old model, /readyz answers
// 503 while the replacement loads, and the fingerprint change makes
// stale cache entries unreachable fleet-wide with no epoch protocol.
//
// SIGINT/SIGTERM drain gracefully within -drain; the final metric values
// are flushed to stderr on exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mvpears"
	"mvpears/internal/obs"
	"mvpears/internal/obs/drift"
	"mvpears/internal/server"
)

// splitPeers parses the comma-separated -peers list, dropping empties.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mvpearsd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mvpearsd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	adminAddr := fs.String("admin-addr", "", "operator listener address (pprof, /infoz, /metrics); empty disables it")
	model := fs.String("model", "", "path to a persisted system artifact (required)")
	workers := fs.Int("workers", 0, "concurrent detections (default: GOMAXPROCS)")
	queue := fs.Int("queue", 0, "admission queue depth (default: 2*workers)")
	maxUpload := fs.Int64("max-upload", 16<<20, "max WAV upload size in bytes")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request detection deadline")
	drain := fs.Duration("drain", 30*time.Second, "graceful shutdown budget")
	bootstrap := fs.Bool("bootstrap", false, "train a quick-scale system and save it to -model when the artifact is missing")
	cacheEntries := fs.Int("cache-entries", 0, "verdict cache entry bound (default: 4096)")
	cacheBytes := fs.Int64("cache-bytes", 0, "verdict cache byte bound (default: 64 MiB)")
	cacheOff := fs.Bool("cache-off", false, "disable the verdict cache and singleflight collapsing")
	accessLog := fs.Bool("access-log", true, "write structured JSON request logs to stderr")
	logSample := fs.Float64("log-sample", 1.0, "fraction of ordinary requests to log (slow requests and 5xx always log)")
	slow := fs.Duration("slow", time.Second, "latency above which a request always logs with full span detail")
	auditPath := fs.String("audit", "", "append adversarial verdicts to this JSONL file")
	auditRotate := fs.Int64("audit-rotate-bytes", 64<<20, "rotate the audit file into a gzipped segment at this size (0: never rotate)")
	auditRetain := fs.Int64("audit-retain-bytes", 256<<20, "prune the oldest gzipped audit segments once they exceed this total (0: keep everything)")
	driftThreshold := fs.Float64("drift-threshold", 0, "total-variation distance from the calibration reference at which a score family counts as drifted (default: 0.25)")
	driftWindow := fs.Int("drift-window", 0, "verdicts per rolling drift window (default: 512)")
	sloLatency := fs.Float64("slo-latency-target", 0, "fraction of detect requests that must answer within 250ms (default: 0.99)")
	sloAvailability := fs.Float64("slo-availability-target", 0, "fraction of HTTP requests that must not 5xx (default: 0.999)")
	sloQuality := fs.Float64("slo-quality-target", 0, "fraction of verdicts that must be served drift-free (default: 0.99)")
	cascadeMargin := fs.Float64("cascade-margin", -1, "benign-confidence margin for cascaded engine scheduling (negative: off, 0: auto-calibrate, >1: cascade on but never short-circuits)")
	cascadeSample := fs.Int("cascade-sample", 16, "run the full ensemble on every Nth cascaded request for monitoring (0: never)")
	quantized := fs.Bool("quantized", false, "int8-quantize the neural engines, gated by a boot-time transcription-parity check (failing engines keep float64)")
	streamOn := fs.Bool("stream", true, "serve the live streaming endpoints (/v1/detect/stream, /v1/detect/ws)")
	streamWindow := fs.Duration("stream-window", 0, "sliding-window length for streaming verdicts (default: 1s of audio)")
	streamHop := fs.Duration("stream-hop", 0, "hop between streaming windows (default: 250ms of audio)")
	streamMaxSessions := fs.Int("stream-max-sessions", 0, "max concurrent streaming sessions (default: 64)")
	streamIdle := fs.Duration("stream-idle-timeout", 0, "evict streaming sessions idle this long (default: 30s)")
	clusterAddr := fs.String("cluster-addr", "", "peer-protocol listen address; enables the distributed verdict-cache tier")
	clusterSelf := fs.String("cluster-self", "", "peer address advertised to other replicas (default: the bound -cluster-addr)")
	peers := fs.String("peers", "", "comma-separated peer addresses of the other replicas (requires -cluster-addr)")
	hedgeAfter := fs.Duration("hedge-after", 0, "fixed hedge delay before duplicating a slow detection to an idle peer (default: derived from the measured detection cost)")
	reloadOn := fs.Bool("reload", true, "enable zero-downtime hot model reload (SIGHUP or POST /reloadz on the admin listener)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *model == "" {
		return fmt.Errorf("-model is required (train one with `mvpears detect -quick -model PATH -in clip.wav`, or pass -bootstrap)")
	}
	logger := log.New(os.Stderr, "", log.LstdFlags)

	sys, err := mvpears.Open(*model)
	switch {
	case err == nil:
		logger.Printf("loaded model artifact %s", *model)
	case *bootstrap:
		logger.Printf("no usable artifact at %s (%v); bootstrapping a quick-scale system", *model, err)
		sys, err = mvpears.Build(mvpears.WithQuickScale())
		if err != nil {
			return fmt.Errorf("bootstrapping: %w", err)
		}
		if err := sys.SaveFile(*model); err != nil {
			return fmt.Errorf("saving bootstrap artifact: %w", err)
		}
		logger.Printf("saved bootstrap artifact to %s", *model)
	default:
		return fmt.Errorf("opening model %s: %w (pass -bootstrap to train a quick-scale one)", *model, err)
	}

	// accelerate applies the boot-time accelerators to a freshly loaded
	// system. Hot reload re-applies them to the replacement model, so a
	// reloaded daemon keeps the exact acceleration it booted with.
	accelerate := func(sys *mvpears.System) error {
		if *quantized {
			enabled, fellBack, err := sys.EnableQuantized()
			if err != nil {
				return fmt.Errorf("enabling int8 inference: %w", err)
			}
			logger.Printf("int8 inference enabled for %v (parity fallback to float64: %v)", enabled, fellBack)
		}
		if *cascadeMargin >= 0 {
			if err := sys.EnableCascade(*cascadeMargin, *cascadeSample); err != nil {
				return fmt.Errorf("enabling cascade: %w", err)
			}
			st := sys.Cascade()
			logger.Printf("cascade enabled: margin %.4f, full-ensemble sample 1/%d, engine order %v (calibrated costs %v)",
				st.Margin, st.SampleEvery, st.EngineOrder, st.EngineCosts)
		}
		return nil
	}
	if err := accelerate(sys); err != nil {
		return err
	}

	cfg := server.Config{
		Backend:              sys,
		Workers:              *workers,
		QueueDepth:           *queue,
		MaxUploadBytes:       *maxUpload,
		RequestTimeout:       *timeout,
		Logger:               logger,
		CacheEntries:         *cacheEntries,
		CacheBytes:           *cacheBytes,
		CacheOff:             *cacheOff,
		LogSampleRate:        *logSample,
		SlowRequestThreshold: *slow,
		Drift: drift.Config{
			WindowN:   *driftWindow,
			Threshold: *driftThreshold,
		},
		SLO: server.SLOTargets{
			Latency:      *sloLatency,
			Availability: *sloAvailability,
			Quality:      *sloQuality,
		},
	}
	if *accessLog {
		cfg.AccessLog = os.Stderr
	}
	if *streamOn {
		rate := sys.SampleRate()
		toSamples := func(d time.Duration) int {
			return int(float64(rate) * d.Seconds())
		}
		cfg.Stream = &server.StreamConfig{
			Window:      toSamples(*streamWindow),
			Hop:         toSamples(*streamHop),
			MaxSessions: *streamMaxSessions,
			IdleTimeout: *streamIdle,
		}
	}
	if *auditPath != "" {
		sink, err := obs.OpenAuditSinkWith(*auditPath, obs.AuditSinkOptions{
			MaxSegmentBytes: *auditRotate,
			MaxTotalBytes:   *auditRetain,
		})
		if err != nil {
			return err
		}
		defer sink.Close()
		cfg.Audit = sink
		logger.Printf("auditing adversarial verdicts to %s (rotate %d B, retain %d B)", *auditPath, *auditRotate, *auditRetain)
	}
	if *reloadOn {
		cfg.Reload = func() (server.Backend, error) {
			nsys, err := mvpears.Open(*model)
			if err != nil {
				return nil, fmt.Errorf("reopening model %s: %w", *model, err)
			}
			if err := accelerate(nsys); err != nil {
				return nil, err
			}
			return nsys, nil
		}
	}
	if *clusterAddr != "" {
		cfg.Cluster = &server.ClusterConfig{
			Addr:       *clusterAddr,
			Self:       *clusterSelf,
			Peers:      splitPeers(*peers),
			HedgeAfter: *hedgeAfter,
		}
	} else if *peers != "" {
		return fmt.Errorf("-peers requires -cluster-addr")
	}
	s, err := server.New(cfg)
	if err != nil {
		return err
	}
	// SIGHUP triggers a hot model reload: the artifact at -model is
	// re-opened and swapped in with zero downtime. The serving signals
	// (SIGINT/SIGTERM) stay with RunUntilSignal.
	if cfg.Reload != nil {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		defer signal.Stop(hup)
		go func() {
			for range hup {
				logger.Printf("SIGHUP: hot-reloading model from %s", *model)
				if err := s.Reload(); err != nil {
					logger.Printf("hot reload failed: %v", err)
				}
			}
		}()
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", *addr, err)
	}

	// The admin listener is separate by design: operators can firewall it
	// independently and a pprof profile can never contend for (or leak
	// through) the public serving socket.
	var adminSrv *http.Server
	if *adminAddr != "" {
		adminLn, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			return fmt.Errorf("listening on admin %s: %w", *adminAddr, err)
		}
		adminSrv = &http.Server{Handler: s.AdminHandler(), ReadHeaderTimeout: 10 * time.Second, ErrorLog: logger}
		go func() {
			if err := adminSrv.Serve(adminLn); err != nil && err != http.ErrServerClosed {
				logger.Printf("admin listener: %v", err)
			}
		}()
		logger.Printf("admin endpoints on http://%s (/debug/pprof/, /infoz, /statusz, /metrics)", adminLn.Addr())
	}

	logger.Printf("serving on http://%s (auxiliaries %v, %d Hz)", ln.Addr(), sys.AuxiliaryNames(), sys.SampleRate())
	runErr := s.RunUntilSignal(ln, *drain, os.Interrupt, syscall.SIGTERM)
	if adminSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := adminSrv.Shutdown(ctx); err != nil {
			logger.Printf("admin shutdown: %v", err)
		}
		cancel()
	}

	// Final flush: the last metric values, for postmortems and log scrapes.
	fmt.Fprintln(os.Stderr, "--- final metrics ---")
	if err := s.DumpMetrics(os.Stderr); err != nil {
		logger.Printf("dumping metrics: %v", err)
	}
	return runErr
}
