package main

import (
	"math"
	"testing"
)

func TestParseLine(t *testing.T) {
	name, s, ok := parseLine("BenchmarkServeHit-4   	  123456	      9118 ns/op	    8080 B/op	      53 allocs/op")
	if !ok || name != "BenchmarkServeHit" {
		t.Fatalf("parse = (%q, ok=%v)", name, ok)
	}
	if s.nsPerOp != 9118 || s.bytesPerOp != 8080 || s.allocsPerOp != 53 {
		t.Fatalf("sample = %+v", s)
	}

	// Custom metrics (b.ReportMetric) ride along as extra units.
	name, s, ok = parseLine("BenchmarkStreamWindow 	     100	 1148192 ns/op	   1037727 median-ns/window	  250888 B/op	     170 allocs/op")
	if !ok || name != "BenchmarkStreamWindow" {
		t.Fatalf("parse = (%q, ok=%v)", name, ok)
	}
	if s.extra["median-ns/window"] != 1037727 {
		t.Fatalf("extra = %v", s.extra)
	}

	for _, line := range []string{
		"goos: linux",
		"pkg: mvpears/internal/server",
		"PASS",
		"ok  	mvpears/internal/server	10.611s",
		"",
		"--- BENCH: BenchmarkX",
		"BenchmarkBroken-4   notanumber   12 ns/op",
	} {
		if name, _, ok := parseLine(line); ok {
			t.Errorf("parseLine(%q) accepted as %q", line, name)
		}
	}
}

func TestMedianAndNoise(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("median(3,1,2) = %v", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("median(4,1,2,3) = %v", got)
	}
	// Half-spread relative to the median: (110-90)/2/100 = 10%.
	if got := noisePct([]float64{90, 100, 110}); math.Abs(got-10) > 1e-9 {
		t.Errorf("noisePct = %v, want 10", got)
	}
	if got := noisePct([]float64{100}); got != 0 {
		t.Errorf("noisePct of one sample = %v, want 0", got)
	}
}

func TestSummarize(t *testing.T) {
	byName := map[string][]sample{
		"BenchmarkA": {
			{nsPerOp: 100, bytesPerOp: 8, allocsPerOp: 1},
			{nsPerOp: 120, bytesPerOp: 8, allocsPerOp: 1},
			{nsPerOp: 110, bytesPerOp: 8, allocsPerOp: 1},
		},
		"BenchmarkB": {
			{nsPerOp: 50, extra: map[string]float64{"x/op": 7}},
			{nsPerOp: 70, extra: map[string]float64{"x/op": 9}},
		},
	}
	rs := summarize([]string{"BenchmarkA", "BenchmarkB"}, byName)
	if len(rs) != 2 || rs[0].Name != "BenchmarkA" || rs[1].Name != "BenchmarkB" {
		t.Fatalf("order lost: %+v", rs)
	}
	a := rs[0]
	if a.MedianNsOp != 110 || a.MinNsOp != 100 || a.MaxNsOp != 120 || a.Samples != 3 {
		t.Errorf("A = %+v", a)
	}
	if math.Abs(a.NoisePct-(20.0/2/110*100)) > 1e-9 {
		t.Errorf("A noise = %v", a.NoisePct)
	}
	b := rs[1]
	if b.MedianNsOp != 60 || b.Extra["x/op"] != 8 {
		t.Errorf("B = %+v", b)
	}
}
