// benchmed runs a benchmark suite in interleaved rounds and reports
// per-benchmark medians with a measured noise bound.
//
// Single-run `go test -bench` numbers on a shared box drift with
// machine load, and back-to-back runs of the SAME benchmark share that
// drift — comparing "six runs of A" against "six runs of B taken a
// minute later" bakes the drift into the delta. benchmed instead runs
// the WHOLE suite R times (round-robin over the benchmarks, one full
// `go test` invocation per round), so every benchmark's samples are
// spread evenly across the session and slow machine drift cancels out
// of cross-benchmark comparisons. The per-benchmark half-spread
// ((max-min)/2 relative to the median) is reported as noise_pct: the
// measured tracking band for THIS session, replacing any fixed
// assumption about how noisy the box is. A delta smaller than the
// recorded noise bound is not a regression.
//
// Usage:
//
//	benchmed [-rounds 5] [-bench regex] [-benchtime 1s] [-json] pkg
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// sample is one benchmark result line from one round.
type sample struct {
	nsPerOp     float64
	bytesPerOp  int64
	allocsPerOp int64
	// extra holds trailing custom metrics (b.ReportMetric), unit -> value.
	extra map[string]float64
}

// benchLine matches one `go test -bench` result line:
//
//	BenchmarkName-8   123   4567 ns/op   89 B/op   1 allocs/op   7.0 extra/unit
//
// The -N GOMAXPROCS suffix is stripped from the name so samples group
// identically across machines.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// parseLine decodes one benchmark output line, reporting ok=false for
// non-benchmark lines (headers, PASS, ok).
func parseLine(line string) (name string, s sample, ok bool) {
	m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
	if m == nil {
		return "", sample{}, false
	}
	name = m[1]
	fields := strings.Fields(m[2])
	if len(fields)%2 != 0 || len(fields) == 0 {
		return "", sample{}, false
	}
	s.extra = map[string]float64{}
	seenNs := false
	for i := 0; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", sample{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			s.nsPerOp = v
			seenNs = true
		case "B/op":
			s.bytesPerOp = int64(v)
		case "allocs/op":
			s.allocsPerOp = int64(v)
		default:
			s.extra[unit] = v
		}
	}
	if !seenNs {
		return "", sample{}, false
	}
	return name, s, true
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// noisePct is the half-spread of the samples relative to their median,
// in percent: the session's measured tracking band.
func noisePct(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	med := median(xs)
	if med == 0 {
		return 0
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return (hi - lo) / 2 / med * 100
}

// result summarizes one benchmark across all rounds.
type result struct {
	Name        string             `json:"name"`
	Samples     int                `json:"samples"`
	MedianNsOp  float64            `json:"median_ns_per_op"`
	NoisePct    float64            `json:"noise_pct"`
	MinNsOp     float64            `json:"min_ns_per_op"`
	MaxNsOp     float64            `json:"max_ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// summarize folds each benchmark's per-round samples into its median
// result, in first-seen order.
func summarize(order []string, byName map[string][]sample) []result {
	out := make([]result, 0, len(order))
	for _, name := range order {
		ss := byName[name]
		ns := make([]float64, len(ss))
		bytesMed := make([]float64, len(ss))
		allocsMed := make([]float64, len(ss))
		extraKeys := map[string]bool{}
		for i, s := range ss {
			ns[i] = s.nsPerOp
			bytesMed[i] = float64(s.bytesPerOp)
			allocsMed[i] = float64(s.allocsPerOp)
			for k := range s.extra {
				extraKeys[k] = true
			}
		}
		r := result{
			Name:        name,
			Samples:     len(ss),
			MedianNsOp:  median(ns),
			NoisePct:    noisePct(ns),
			BytesPerOp:  int64(median(bytesMed)),
			AllocsPerOp: int64(median(allocsMed)),
		}
		for _, x := range ns {
			if r.MinNsOp == 0 || x < r.MinNsOp {
				r.MinNsOp = x
			}
			if x > r.MaxNsOp {
				r.MaxNsOp = x
			}
		}
		if len(extraKeys) > 0 {
			r.Extra = map[string]float64{}
			for k := range extraKeys {
				vals := make([]float64, 0, len(ss))
				for _, s := range ss {
					if v, ok := s.extra[k]; ok {
						vals = append(vals, v)
					}
				}
				r.Extra[k] = median(vals)
			}
		}
		out = append(out, r)
	}
	return out
}

func main() {
	rounds := flag.Int("rounds", 5, "interleaved suite rounds (samples per benchmark)")
	bench := flag.String("bench", ".", "benchmark regex passed to -bench")
	benchtime := flag.String("benchtime", "", "passed to -benchtime when non-empty")
	jsonOut := flag.Bool("json", false, "emit the summary as JSON instead of a table")
	goBin := flag.String("go", "go", "go binary to invoke")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchmed [flags] <package>")
		os.Exit(2)
	}
	pkg := flag.Arg(0)

	byName := map[string][]sample{}
	var order []string
	for round := 0; round < *rounds; round++ {
		args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem"}
		if *benchtime != "" {
			args = append(args, "-benchtime", *benchtime)
		}
		args = append(args, pkg)
		out, err := exec.Command(*goBin, args...).CombinedOutput()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchmed: round %d: %v\n%s", round+1, err, out)
			os.Exit(1)
		}
		for _, line := range strings.Split(string(out), "\n") {
			name, s, ok := parseLine(line)
			if !ok {
				continue
			}
			if _, seen := byName[name]; !seen {
				order = append(order, name)
			}
			byName[name] = append(byName[name], s)
		}
		fmt.Fprintf(os.Stderr, "benchmed: round %d/%d done\n", round+1, *rounds)
	}
	if len(order) == 0 {
		fmt.Fprintf(os.Stderr, "benchmed: no benchmarks matched %q in %s\n", *bench, pkg)
		os.Exit(1)
	}
	results := summarize(order, byName)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(os.Stderr, "benchmed: %v\n", err)
			os.Exit(1)
		}
		return
	}
	w := os.Stdout
	fmt.Fprintf(w, "%-40s %10s %8s %12s %12s %8s\n",
		"benchmark (median of "+strconv.Itoa(*rounds)+")", "ns/op", "noise", "B/op", "allocs/op", "samples")
	for _, r := range results {
		fmt.Fprintf(w, "%-40s %10.0f %7.1f%% %12d %12d %8d\n",
			r.Name, r.MedianNsOp, r.NoisePct, r.BytesPerOp, r.AllocsPerOp, r.Samples)
		for unit, v := range r.Extra {
			fmt.Fprintf(w, "    %-36s %10.0f %s\n", "", v, unit)
		}
	}
}
