// Command mvpearslint runs the project-invariant static-analysis suite
// over the mvpears module. It is pure standard library — go/parser,
// go/types, and go/importer do the loading — and encodes the contracts
// the pipeline's correctness argument rests on: determinism of the pure
// packages, pooled-buffer ownership, context threading in the serving
// layer, metric exposition grammar, and no float equality on verdict
// paths. See internal/lint for the analyzers and DESIGN.md §14 for the
// catalogue of invariants.
//
// Usage:
//
//	mvpearslint [-run name,name] [-list] [packages]
//
// The package argument accepts ./... (the whole module, the default),
// ./dir/... subtree patterns, or individual ./dir paths, resolved
// against the enclosing module. Exit status: 0 clean, 1 findings,
// 2 load or usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mvpears/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("mvpearslint", flag.ContinueOnError)
	runList := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *runList != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*runList, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "mvpearslint: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvpearslint:", err)
		return 2
	}
	root, modulePath, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvpearslint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := lint.NewLoader(root, modulePath)
	pkgs, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvpearslint:", err)
		return 2
	}

	cfg := lint.DefaultConfig()
	findings := 0
	for _, pkg := range pkgs {
		if !matchesAny(pkg.ImportPath, modulePath, cwd, root, patterns) {
			continue
		}
		for _, d := range lint.RunAnalyzers(pkg, cfg, analyzers) {
			rel := d
			if r, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
				rel.Pos.Filename = r
			}
			fmt.Println(rel)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "mvpearslint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

// matchesAny resolves ./-relative patterns against cwd within the
// module and matches the package import path.
func matchesAny(importPath, modulePath, cwd, root string, patterns []string) bool {
	for _, pat := range patterns {
		if matchPattern(importPath, modulePath, cwd, root, pat) {
			return true
		}
	}
	return false
}

func matchPattern(importPath, modulePath, cwd, root, pat string) bool {
	// Resolve a ./-relative pattern to an import-path pattern.
	if pat == "." || strings.HasPrefix(pat, "./") {
		rel, err := filepath.Rel(root, filepath.Join(cwd, strings.TrimSuffix(strings.TrimPrefix(pat, "./"), "...")))
		if err != nil {
			return false
		}
		base := modulePath
		if rel != "." && rel != "" {
			base = modulePath + "/" + filepath.ToSlash(rel)
		}
		base = strings.TrimSuffix(base, "/")
		if strings.HasSuffix(pat, "...") {
			return importPath == base || strings.HasPrefix(importPath, base+"/")
		}
		return importPath == base
	}
	// Import-path pattern.
	if sub, ok := strings.CutSuffix(pat, "/..."); ok {
		return importPath == sub || strings.HasPrefix(importPath, sub+"/")
	}
	return importPath == pat
}
