// Command genae crafts audio adversarial examples against the built-in
// target engine (DS0), the way the paper's AE dataset was produced.
//
// Usage:
//
//	genae -attack whitebox -command "open the front door" -out ae.wav
//	genae -attack blackbox -command "open door" -out ae.wav
//	genae -attack nontargeted -out ae.wav
//
// Without -host, a benign host utterance is synthesized. The tool prints
// what DS0 and the auxiliary engines hear for the crafted AE, which
// demonstrates (non-)transferability directly.
package main

import (
	"flag"
	"fmt"
	"os"

	"mvpears"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "genae:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("genae", flag.ContinueOnError)
	attackKind := fs.String("attack", "whitebox", "whitebox, blackbox, nontargeted, or adaptive-td")
	command := fs.String("command", "open the front door", "command to embed (targeted attacks)")
	host := fs.String("host", "", "host WAV (synthesized when empty)")
	hostText := fs.String("host-text", "the weather is good today and the music is loud", "text for the synthesized host")
	out := fs.String("out", "ae.wav", "output WAV path")
	seed := fs.Int64("seed", 1, "attack/synthesis seed")
	quick := fs.Bool("quick", false, "quick (less accurate) engine training")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := []mvpears.Option{mvpears.WithoutTraining()}
	if *quick {
		opts = append(opts, mvpears.WithQuickScale())
	}
	fmt.Fprintln(os.Stderr, "training engines...")
	sys, err := mvpears.Build(opts...)
	if err != nil {
		return err
	}
	var hostClip *mvpears.Clip
	if *host != "" {
		hostClip, err = mvpears.LoadWAV(*host)
		if err != nil {
			return err
		}
		if hostClip.SampleRate != sys.SampleRate() {
			hostClip, err = hostClip.Resample(sys.SampleRate())
			if err != nil {
				return err
			}
		}
	} else {
		hostClip, err = sys.GenerateSpeech(*hostText, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("synthesized host: %q\n", *hostText)
	}

	var ae *mvpears.Clip
	switch *attackKind {
	case "whitebox":
		res, err := sys.CraftWhiteBoxAE(hostClip, *command)
		if err != nil {
			return err
		}
		report(res)
		ae = res.AE
	case "blackbox":
		res, err := sys.CraftBlackBoxAE(hostClip, *command, *seed)
		if err != nil {
			return err
		}
		report(res)
		ae = res.AE
	case "nontargeted":
		clip, ok, err := sys.CraftNonTargetedAE(hostClip, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("non-targeted attack success (WER > 80%%): %v\n", ok)
		ae = clip
	case "adaptive-td":
		res, err := sys.CraftAdaptiveTDAE(hostClip, *command, 0.5)
		if err != nil {
			return err
		}
		report(res)
		fmt.Println("(command embedded in the second half only: evades split-and-splice detection)")
		ae = res.AE
	default:
		return fmt.Errorf("unknown attack %q", *attackKind)
	}

	if err := mvpears.SaveWAV(*out, ae); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	all, err := sys.TranscribeAll(ae)
	if err != nil {
		return err
	}
	fmt.Println("what each engine hears:")
	for _, name := range append([]string{"DS0"}, sys.AuxiliaryNames()...) {
		fmt.Printf("  %-4s %q\n", name, all[name])
	}
	return nil
}

func report(res *mvpears.AEResult) {
	fmt.Printf("attack success: %v (after %d iterations)\n", res.Success, res.Iterations)
	fmt.Printf("host text (per DS0): %q\n", res.HostText)
	fmt.Printf("embedded command:    %q\n", res.TargetText)
	fmt.Printf("DS0 now hears:       %q\n", res.FinalText)
	fmt.Printf("waveform similarity to host: %.3f (SNR %.1f dB)\n", res.Similarity, res.SNRdB)
}
