// Command mvpears trains an MVP-EARS system and runs it on audio files.
//
// Usage:
//
//	mvpears synth -text "open the front door" -out cmd.wav [-seed 7]
//	mvpears transcribe -in clip.wav [-quick]
//	mvpears detect -in clip.wav [-json] [-explain] [-quick] [-classifier svm] [-model cache.gob]
//	mvpears engines [-quick]                # print the engine inventory
//
// Engines are trained from scratch on startup (the models are small);
// -quick trades accuracy for startup time.
//
// detect exit codes: 0 all clips benign, 2 at least one adversarial,
// 1 on error — so shell pipelines can gate on the verdict. With -json it
// emits the same schema as mvpearsd's /v1/detect (one file) or
// /v1/detect/batch (several files) responses.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"mvpears"
	"mvpears/internal/obs"
	"mvpears/internal/server"
)

func main() {
	code, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvpears:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// exitCode folds a plain error into the (code, err) convention.
func exitCode(err error) (int, error) {
	if err != nil {
		return 1, err
	}
	return 0, nil
}

func run(args []string) (int, error) {
	if len(args) < 1 {
		return 1, fmt.Errorf("usage: mvpears <synth|transcribe|detect> [flags]")
	}
	switch args[0] {
	case "synth":
		return exitCode(runSynth(args[1:]))
	case "transcribe":
		return exitCode(runTranscribe(args[1:]))
	case "detect":
		return runDetect(args[1:])
	case "engines":
		return exitCode(runEngines(args[1:]))
	default:
		return 1, fmt.Errorf("unknown subcommand %q (synth, transcribe, detect, engines)", args[0])
	}
}

// buildSystem trains a system, or — when modelPath is set — loads a
// cached one (training and caching it on first use).
func buildSystem(quick bool, classifier, modelPath string, train bool) (*mvpears.System, error) {
	if modelPath != "" && train {
		if sys, err := mvpears.Open(modelPath); err == nil {
			fmt.Fprintf(os.Stderr, "loaded cached models from %s\n", modelPath)
			return sys, nil
		}
	}
	opts := []mvpears.Option{mvpears.WithClassifier(classifier)}
	if quick {
		opts = append(opts, mvpears.WithQuickScale())
	}
	if !train {
		opts = append(opts, mvpears.WithoutTraining())
	}
	fmt.Fprintln(os.Stderr, "training engines (use -quick for a faster, less accurate build)...")
	sys, err := mvpears.Build(opts...)
	if err != nil {
		return nil, err
	}
	if modelPath != "" && train {
		if err := sys.SaveFile(modelPath); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "cached models to %s\n", modelPath)
	}
	return sys, nil
}

func runSynth(args []string) error {
	fs := flag.NewFlagSet("synth", flag.ContinueOnError)
	text := fs.String("text", "", "sentence to synthesize")
	out := fs.String("out", "out.wav", "output WAV path")
	seed := fs.Int64("seed", 1, "speaker/variation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *text == "" {
		return fmt.Errorf("synth: -text is required")
	}
	sys, err := mvpears.Build(mvpears.WithQuickScale(), mvpears.WithoutTraining())
	if err != nil {
		return err
	}
	clip, err := sys.GenerateSpeech(*text, *seed)
	if err != nil {
		return err
	}
	if err := mvpears.SaveWAV(*out, clip); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%.2f s at %d Hz)\n", *out, clip.Duration(), clip.SampleRate)
	return nil
}

func runTranscribe(args []string) error {
	fs := flag.NewFlagSet("transcribe", flag.ContinueOnError)
	in := fs.String("in", "", "input WAV path")
	quick := fs.Bool("quick", false, "quick (less accurate) engine training")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("transcribe: -in is required")
	}
	sys, err := buildSystem(*quick, "svm", "", false)
	if err != nil {
		return err
	}
	clip, err := mvpears.LoadWAV(*in)
	if err != nil {
		return err
	}
	if clip.SampleRate != sys.SampleRate() {
		clip, err = clip.Resample(sys.SampleRate())
		if err != nil {
			return err
		}
	}
	all, err := sys.TranscribeAll(clip)
	if err != nil {
		return err
	}
	for _, name := range append([]string{"DS0"}, sys.AuxiliaryNames()...) {
		fmt.Printf("%-4s %q\n", name, all[name])
	}
	return nil
}

func runDetect(args []string) (int, error) {
	fs := flag.NewFlagSet("detect", flag.ContinueOnError)
	in := fs.String("in", "", "input WAV path (more files may follow as positional args)")
	quick := fs.Bool("quick", false, "quick (less accurate) engine training")
	classifier := fs.String("classifier", "svm", "svm, knn, forest, or logreg")
	model := fs.String("model", "", "model cache path (train once, reuse)")
	jsonOut := fs.Bool("json", false, "emit the mvpearsd response schema instead of human-readable text")
	explain := fs.Bool("explain", false, "include per-engine phonetic evidence with each verdict")
	if err := fs.Parse(args); err != nil {
		return 1, err
	}
	paths := fs.Args()
	if *in != "" {
		paths = append([]string{*in}, paths...)
	}
	if len(paths) == 0 {
		return 1, fmt.Errorf("detect: -in is required")
	}
	sys, err := buildSystem(*quick, *classifier, *model, true)
	if err != nil {
		return 1, err
	}
	clips := make([]*mvpears.Clip, len(paths))
	for i, p := range paths {
		clip, err := mvpears.LoadWAV(p)
		if err != nil {
			return 1, err
		}
		if clip.SampleRate != sys.SampleRate() {
			clip, err = clip.Resample(sys.SampleRate())
			if err != nil {
				return 1, err
			}
		}
		clips[i] = clip
	}
	ctx := context.Background()
	if *explain {
		ctx = obs.WithExplain(ctx)
	}
	dets, err := sys.DetectBatchCtx(ctx, clips)
	if err != nil {
		return 1, err
	}
	if *jsonOut {
		if err := printDetectJSON(sys, paths, dets); err != nil {
			return 1, err
		}
	} else {
		printDetectText(sys, paths, dets)
	}
	for _, det := range dets {
		if det.Adversarial {
			return 2, nil
		}
	}
	return 0, nil
}

func printDetectText(sys *mvpears.System, paths []string, dets []*mvpears.Detection) {
	for i, det := range dets {
		if len(dets) > 1 {
			fmt.Printf("== %s ==\n", paths[i])
		}
		verdict := "BENIGN"
		if det.Adversarial {
			verdict = "ADVERSARIAL"
		}
		fmt.Printf("verdict: %s\n", verdict)
		fmt.Printf("target DS0 heard: %q\n", det.Transcriptions["DS0"])
		for j, name := range sys.AuxiliaryNames() {
			fmt.Printf("aux %-4s heard %q (similarity %.3f)\n", name, det.Transcriptions[name], det.Scores[j])
		}
		if exp := det.Explanation; exp != nil {
			fmt.Printf("similarity method: %s\n", exp.Method)
			fmt.Printf("phonetic %-4s %q\n", exp.Target.Engine, exp.Target.Phonetic)
			for _, aux := range exp.Auxiliaries {
				fmt.Printf("phonetic %-4s %q\n", aux.Engine, aux.Phonetic)
			}
			fmt.Printf("weakest agreement: %s at %.3f\n", exp.MinEngine, exp.MinSimilarity)
		}
		fmt.Printf("timing: recognition %v, similarity %v, classify %v\n",
			det.Timing.Recognition, det.Timing.Similarity, det.Timing.Classify)
	}
}

// printDetectJSON mirrors the daemon's wire format: one file renders the
// /v1/detect response, several render the /v1/detect/batch response.
func printDetectJSON(sys *mvpears.System, paths []string, dets []*mvpears.Detection) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	aux := sys.AuxiliaryNames()
	if len(dets) == 1 {
		dj := server.NewDetectionJSON(dets[0], aux)
		dj.Explanation = server.NewExplanationJSON(dets[0].Explanation)
		return enc.Encode(dj)
	}
	resp := server.BatchResponseJSON{Results: make([]server.FileDetectionJSON, len(dets))}
	for i, det := range dets {
		dj := server.NewDetectionJSON(det, aux)
		dj.Explanation = server.NewExplanationJSON(det.Explanation)
		resp.Results[i] = server.FileDetectionJSON{File: paths[i], DetectionJSON: dj}
	}
	return enc.Encode(resp)
}

func runEngines(args []string) error {
	fs := flag.NewFlagSet("engines", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "quick (less accurate) engine training")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sys, err := buildSystem(*quick, "svm", "", false)
	if err != nil {
		return err
	}
	for _, info := range sys.DescribeEngines() {
		fmt.Printf("%-4s %-58s %-32s %7d params\n", info.ID, info.Architecture, info.FrontEnd, info.Parameters)
	}
	return nil
}
