package mvpears

import (
	"fmt"
	"time"

	"mvpears/internal/stream"
)

// Streaming detection: the System-level wiring of internal/stream. A
// StreamManager owns live audio sessions; each session re-transcribes a
// sliding window through the ensemble for provisional verdicts, flags
// adversarial input early when a calibrated floor is crossed, and
// produces a final whole-clip verdict identical to Detect's.

// Public names for the streaming types, so callers outside the module
// can hold what NewStreamManager and Session.Finish return.
type (
	StreamManager = stream.Manager
	StreamSession = stream.Session
	StreamWindow  = stream.Window
	StreamFinal   = stream.Final
)

// StreamOptions configures NewStreamManager. Zero values take the
// defaults documented on stream.Config (1 s window, 250 ms hop, 64
// sessions, 30 s idle timeout, 2 min max duration, Window/Hop+1
// consecutive offending windows to flag).
type StreamOptions struct {
	Window      int // samples
	Hop         int // samples
	MaxSessions int
	IdleTimeout time.Duration
	MaxDuration time.Duration
	MinWindows  int
	// DisableEarlyExit keeps provisional verdicts flowing but never flags
	// before end-of-stream. Early exit is also silently disabled when the
	// System has no cached training pools (e.g. loaded WithoutTraining)
	// since the floors cannot be calibrated.
	DisableEarlyExit bool
	// FloorSlack widens the gap below the lowest classifier-benign
	// calibration score that the early exit requires (default 0.05).
	FloorSlack float64
	// Hooks observe session lifecycle and per-window events.
	Hooks stream.Hooks
}

// NewStreamManager builds the streaming session manager for this System.
// When training pools are available and early exit is not disabled, the
// per-auxiliary floors are calibrated with Detector.CalibrateFloors — the
// mirror image of the cascade's no-flip margins.
func (s *System) NewStreamManager(opts StreamOptions) (*stream.Manager, error) {
	cfg := stream.Config{
		Detector:    s.det,
		SampleRate:  s.engines.SampleRate,
		Window:      opts.Window,
		Hop:         opts.Hop,
		MaxSessions: opts.MaxSessions,
		IdleTimeout: opts.IdleTimeout,
		MaxDuration: opts.MaxDuration,
		MinWindows:  opts.MinWindows,
		Hooks:       opts.Hooks,
	}
	if !opts.DisableEarlyExit && s.pools != nil {
		floors, err := s.det.CalibrateFloors(
			columnsToRows(s.pools.Benign),
			columnsToRows(s.pools.AE),
			opts.FloorSlack,
		)
		if err != nil {
			return nil, fmt.Errorf("mvpears: calibrating early-exit floors: %w", err)
		}
		cfg.Floors = floors
	}
	m, err := stream.NewManager(cfg)
	if err != nil {
		return nil, fmt.Errorf("mvpears: %w", err)
	}
	return m, nil
}

// TargetName returns the target ASR engine's name (the key its
// transcription is reported under).
func (s *System) TargetName() string { return s.det.Target.Name() }

// DetectionFromStream converts a streaming session's final result into
// the public Detection form — the same shape Detect returns, so verdict
// caching, explanation and audit logging treat streamed and batch
// verdicts identically.
func (s *System) DetectionFromStream(fin *stream.Final) *Detection {
	return s.toDetection(fin.Decision, fin.Timing)
}

// ObserveEngineCost feeds one observed per-engine transcription cost
// into the cascade scheduler's live EWMA (no-op when the cascade is
// off or the engine name is not an auxiliary). The serving layer calls
// this with measured span durations so the cascade's phase-one choice
// tracks production behaviour instead of boot-time calibration.
func (s *System) ObserveEngineCost(engine string, d time.Duration) {
	if c := s.det.Cascade; c != nil {
		c.ObserveCost(engine, d)
	}
}

// LiveEngineCosts returns the cascade's current per-auxiliary cost
// estimates (boot calibration blended with runtime observations), or nil
// when the cascade is off.
func (s *System) LiveEngineCosts() map[string]time.Duration {
	if c := s.det.Cascade; c != nil {
		return c.LiveCosts()
	}
	return nil
}
